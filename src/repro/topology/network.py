"""The :class:`CloudNetwork` container and SOF-instance sampling.

A cloud network is an access-node topology plus a set of data-center
nodes.  Instances are sampled the way Section VIII-A describes:

- link usages drawn uniformly in ``(0, 1)`` and converted to edge costs
  with the Fortz--Thorup function (100 Mbps capacity, 5 Mbps demands);
- ``num_vms`` VM nodes, each attached to a uniformly random data center;
- VM setup costs derived from random host utilisation through the same
  convex cost shape ([48]);
- sources and destinations sampled uniformly from the access nodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from repro.core.problem import ServiceChain, SOFInstance
from repro.costmodel import assign_static_costs, fortz_thorup_cost
from repro.graph import Graph

Node = Hashable


@dataclass
class CloudNetwork:
    """An access-node topology with designated data centers.

    Attributes:
        name: topology name (used in reports).
        graph: the access-node graph; edge costs are placeholders until
            :meth:`make_instance` draws usage-based costs.
        datacenters: the access nodes hosting data centers.
    """

    name: str
    graph: Graph
    datacenters: List[Node] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        """Number of access nodes."""
        return len(self.graph)

    @property
    def num_links(self) -> int:
        """Number of links."""
        return self.graph.num_edges()

    def access_nodes(self) -> List[Node]:
        """All access nodes, in deterministic order."""
        return sorted(self.graph.nodes(), key=repr)

    # ------------------------------------------------------------------
    def make_instance(
        self,
        num_sources: int,
        num_destinations: int,
        num_vms: int,
        chain: ServiceChain,
        seed: int = 0,
        link_capacity: float = 100.0,
        vm_capacity: float = 5.0,
        setup_cost_multiplier: float = 1.0,
        graph: Optional[Graph] = None,
    ) -> SOFInstance:
        """Sample a SOF instance with the paper's workload recipe.

        Args:
            num_sources: size of the candidate source set ``S``.
            num_destinations: size of ``D`` (disjoint from ``S``).
            num_vms: number of VM nodes, attached to random data centers.
            chain: the demanded VNF chain.
            seed: RNG seed (controls costs, VM placement and S/D choice).
            link_capacity: link bandwidth (100 Mbps in the paper).
            vm_capacity: host capacity used for the setup-cost draw.
            setup_cost_multiplier: scales VM setup costs (the Fig. 11
                1x..9x sweep).
            graph: use an externally prepared cost-bearing graph instead of
                drawing fresh static costs (the online simulator does this).

        Returns:
            A fully-populated :class:`SOFInstance`.
        """
        if max(num_sources, num_destinations) > self.num_nodes:
            raise ValueError(
                f"{self.name}: cannot draw {num_sources} sources and "
                f"{num_destinations} destinations from {self.num_nodes} nodes"
            )
        if num_vms < len(chain):
            raise ValueError(
                f"{num_vms} VMs cannot host a chain of length {len(chain)}"
            )
        # Independent RNG streams so that sweeping one dimension (say the
        # VM count) does not perturb the others (link costs, S/D draw) --
        # the standard variance-reduction for parameter sweeps.
        rng_links = random.Random(seed * 3 + 0)
        rng = random.Random(seed * 3 + 1)
        rng_sd = random.Random(seed * 3 + 2)
        if graph is None:
            work = self.graph.copy()
            assign_static_costs(work, rng_links, capacity=link_capacity)
        else:
            work = graph.copy()

        # Attach VMs to random data centers (or any node when the topology
        # declares no data centers, e.g. tiny test networks).
        hosts = self.datacenters or self.access_nodes()
        vms: List[Node] = []
        node_costs = {}
        for i in range(num_vms):
            dc = rng.choice(hosts)
            vm = ("vm", i)
            # The VM's attachment link is an intra-DC hop: cheap but not
            # free, drawn from the low end of the usage distribution.
            attach_usage = rng.random() * 0.3
            work.add_node(vm)
            work.add_edge(
                vm, dc,
                fortz_thorup_cost(attach_usage * link_capacity, link_capacity),
            )
            host_utilisation = rng.random()
            node_costs[vm] = (
                fortz_thorup_cost(host_utilisation * vm_capacity, vm_capacity)
                * setup_cost_multiplier
            )
            vms.append(vm)

        population = self.access_nodes()
        # Disjoint S and D when the topology is large enough; independent
        # draws otherwise (the paper sweeps |S| to 26 on the 27-node
        # SoftLayer map, which cannot stay disjoint from 6 destinations).
        # Destinations first: growing the source count then extends the
        # sample without re-drawing the destination set.
        if num_sources + num_destinations <= len(population):
            picks = rng_sd.sample(population, num_sources + num_destinations)
            destinations = picks[:num_destinations]
            sources = picks[num_destinations:]
        else:
            destinations = rng_sd.sample(population, num_destinations)
            sources = rng_sd.sample(population, num_sources)
        return SOFInstance(
            graph=work,
            vms=vms,
            sources=sources,
            destinations=destinations,
            chain=chain,
            node_costs=node_costs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CloudNetwork({self.name!r}, |V|={self.num_nodes}, "
            f"|E|={self.num_links}, DCs={len(self.datacenters)})"
        )
