"""Seed-averaged parameter sweeps (the skeleton of Figs. 8-11).

Every figure in the evaluation is "total forest cost vs one swept
parameter, one curve per algorithm, other parameters at their defaults".
:func:`run_sweep` materialises that directly: for each swept value it
draws ``seeds`` instances from the topology, runs every algorithm, and
averages costs.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import enemp_baseline, est_baseline, st_baseline
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import ServiceChain, SOFInstance
from repro.core.sofda import sofda
from repro.topology.network import CloudNetwork

Embedder = Callable[[SOFInstance], ServiceOverlayForest]

#: Paper defaults (Section VIII-A): sources, destinations, VMs, chain length.
DEFAULTS = {
    "num_sources": 14,
    "num_destinations": 6,
    "num_vms": 25,
    "chain_length": 3,
}

#: The sweep grids of Figs. 8-10.
SWEEPS = {
    "num_sources": [2, 8, 14, 20, 26],
    "num_destinations": [2, 4, 6, 8, 10],
    "num_vms": [5, 15, 25, 35, 45],
    "chain_length": [3, 4, 5, 6, 7],
}


def default_algorithms(include_ilp: bool = False, ilp_time_limit: float = 120.0) -> Dict[str, Embedder]:
    """The paper's algorithm set; CPLEX (HiGHS) only on request."""
    algorithms: Dict[str, Embedder] = {
        "SOFDA": lambda inst: sofda(inst).forest,
        "eNEMP": enemp_baseline,
        "eST": est_baseline,
        "ST": st_baseline,
    }
    if include_ilp:
        from repro.ilp import solve_sof_ilp

        algorithms["CPLEX"] = lambda inst: solve_sof_ilp(
            inst, time_limit=ilp_time_limit
        ).forest
    return algorithms


ALGORITHMS = ("SOFDA", "eNEMP", "eST", "ST")


@dataclass
class SweepResult:
    """One figure panel: swept values x algorithms -> mean cost."""

    parameter: str
    values: List[float]
    mean_cost: Dict[str, List[float]] = field(default_factory=dict)
    mean_vms_used: Dict[str, List[float]] = field(default_factory=dict)
    mean_runtime_s: Dict[str, List[float]] = field(default_factory=dict)

    def winner_per_value(self) -> List[str]:
        """Cheapest algorithm at each swept value."""
        out = []
        for i in range(len(self.values)):
            out.append(
                min(self.mean_cost, key=lambda name: self.mean_cost[name][i])
            )
        return out


def run_sweep(
    network: CloudNetwork,
    parameter: str,
    values: Sequence[float],
    algorithms: Optional[Dict[str, Embedder]] = None,
    seeds: int = 5,
    setup_cost_multiplier: float = 1.0,
    overrides: Optional[Dict[str, int]] = None,
    link_capacity: float = 1.0,
    vm_capacity: float = 1.0,
) -> SweepResult:
    """Sweep ``parameter`` over ``values`` with everything else at defaults.

    ``overrides`` adjusts the non-swept defaults (e.g. smaller defaults for
    quick CI benches).  Costs use unit capacities, matching the
    shape-normalised setting discussed in DESIGN.md.
    """
    if parameter not in DEFAULTS:
        raise ValueError(
            f"unknown parameter {parameter!r}; choose from {sorted(DEFAULTS)}"
        )
    algorithms = algorithms or default_algorithms()
    result = SweepResult(parameter=parameter, values=list(values))
    for name in algorithms:
        result.mean_cost[name] = []
        result.mean_vms_used[name] = []
        result.mean_runtime_s[name] = []

    base = dict(DEFAULTS)
    if overrides:
        base.update(overrides)
    for value in values:
        config = dict(base)
        config[parameter] = int(value)
        per_algo_cost: Dict[str, List[float]] = {n: [] for n in algorithms}
        per_algo_vms: Dict[str, List[float]] = {n: [] for n in algorithms}
        per_algo_time: Dict[str, List[float]] = {n: [] for n in algorithms}
        for seed in range(seeds):
            instance = network.make_instance(
                num_sources=config["num_sources"],
                num_destinations=config["num_destinations"],
                num_vms=config["num_vms"],
                chain=ServiceChain.of_length(config["chain_length"]),
                seed=seed * 7919,
                setup_cost_multiplier=setup_cost_multiplier,
                link_capacity=link_capacity,
                vm_capacity=vm_capacity,
            )
            for name, embedder in algorithms.items():
                start = time.perf_counter()
                forest = embedder(instance)
                per_algo_time[name].append(time.perf_counter() - start)
                per_algo_cost[name].append(forest.total_cost())
                per_algo_vms[name].append(len(forest.used_vms()))
        for name in algorithms:
            result.mean_cost[name].append(statistics.mean(per_algo_cost[name]))
            result.mean_vms_used[name].append(statistics.mean(per_algo_vms[name]))
            result.mean_runtime_s[name].append(statistics.mean(per_algo_time[name]))
    return result
