"""Seed-averaged parameter sweeps (the skeleton of Figs. 8-11).

Every figure in the evaluation is "total forest cost vs one swept
parameter, one curve per algorithm, other parameters at their defaults".
:func:`run_sweep` materialises that directly: for each swept value it
draws ``seeds`` instances from the topology, runs every algorithm, and
averages costs.

``run_sweep(workers=N)`` farms the independent (parameter-value, seed)
cells to a fork-based process pool: every cell builds its own instance
from the same seeds, so the per-cell computation is identical to the
serial path and the ordered merge makes the output deterministic --
only the measured runtimes reflect the parallel wall clock.

:func:`run_churn_comparison` is the tenant-lifecycle analogue of the
online comparison: one embedder-independent workload schedule (arrivals
with holding times, departures, background ticks -- see
:mod:`repro.workload`) replayed through every algorithm on identical
fresh simulators, reporting acceptance rates alongside costs.
"""

from __future__ import annotations

import multiprocessing
import statistics
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import enemp_baseline, est_baseline, st_baseline
from repro.core.forest import ServiceOverlayForest
from repro.core.problem import ServiceChain, SOFInstance
from repro.core.sofda import sofda
from repro.graph import kernel
from repro.topology.network import CloudNetwork

Embedder = Callable[[SOFInstance], ServiceOverlayForest]

#: Paper defaults (Section VIII-A): sources, destinations, VMs, chain length.
DEFAULTS = {
    "num_sources": 14,
    "num_destinations": 6,
    "num_vms": 25,
    "chain_length": 3,
}

#: The sweep grids of Figs. 8-10.
SWEEPS = {
    "num_sources": [2, 8, 14, 20, 26],
    "num_destinations": [2, 4, 6, 8, 10],
    "num_vms": [5, 15, 25, 35, 45],
    "chain_length": [3, 4, 5, 6, 7],
}


def default_algorithms(include_ilp: bool = False, ilp_time_limit: float = 120.0) -> Dict[str, Embedder]:
    """The paper's algorithm set; CPLEX (HiGHS) only on request."""
    algorithms: Dict[str, Embedder] = {
        "SOFDA": lambda inst: sofda(inst).forest,
        "eNEMP": enemp_baseline,
        "eST": est_baseline,
        "ST": st_baseline,
    }
    if include_ilp:
        from repro.ilp import solve_sof_ilp

        algorithms["CPLEX"] = lambda inst: solve_sof_ilp(
            inst, time_limit=ilp_time_limit
        ).forest
    return algorithms


ALGORITHMS = ("SOFDA", "eNEMP", "eST", "ST")


@dataclass
class SweepResult:
    """One figure panel: swept values x algorithms -> mean cost."""

    parameter: str
    values: List[float]
    mean_cost: Dict[str, List[float]] = field(default_factory=dict)
    mean_vms_used: Dict[str, List[float]] = field(default_factory=dict)
    mean_runtime_s: Dict[str, List[float]] = field(default_factory=dict)

    def winner_per_value(self) -> List[str]:
        """Cheapest algorithm at each swept value."""
        out = []
        for i in range(len(self.values)):
            out.append(
                min(self.mean_cost, key=lambda name: self.mean_cost[name][i])
            )
        return out


def run_churn_comparison(
    network_factory: Callable[[], CloudNetwork],
    embedders: Dict[str, Embedder],
    schedule: Sequence,
    vms_per_datacenter: int = 5,
    **simulator_kwargs,
) -> Dict[str, "ChurnResult"]:
    """Replay one churn schedule through every algorithm.

    The tenant-lifecycle counterpart of
    :func:`repro.online.run_online_comparison`: each algorithm gets a
    fresh :class:`~repro.online.simulator.OnlineSimulator` over an
    identical topology and its own
    :class:`~repro.workload.WorkloadEngine`, so load state never leaks
    between competitors while every one sees the identical
    embedder-independent event sequence (typically a recorded or
    replayed trace -- see :mod:`repro.workload.trace`).
    ``simulator_kwargs`` (``incremental``, ``planner``, ...) reach every
    simulator, which keeps A/B configuration comparisons on one
    algorithm equally easy.
    """
    from repro.online.simulator import OnlineSimulator
    from repro.workload.lifecycle import ChurnResult, WorkloadEngine  # noqa: F401

    results: Dict[str, ChurnResult] = {}
    for name, embedder in embedders.items():
        simulator = OnlineSimulator(
            network_factory(), vms_per_datacenter=vms_per_datacenter,
            **simulator_kwargs,
        )
        engine = WorkloadEngine(simulator, embedder, name=name)
        results[name] = engine.run(schedule)
    return results


#: Shared state for sweep cells.  Populated in the parent before the
#: fork-based pool is created, so workers inherit it by memory copy --
#: no pickling of the network or the (often lambda) embedders involved.
_SWEEP_STATE: Dict[str, object] = {}


def _sweep_cell(cell: Tuple[Dict[str, int], int]) -> Dict[str, Tuple[float, int, float]]:
    """Run every algorithm on one (config, seed) cell.

    Each cell builds its own instance, so cells are independent and the
    result is a pure function of ``(network, config, seed, algorithms)``
    -- identical whether evaluated serially or in a pool worker.
    """
    config, seed = cell
    state = _SWEEP_STATE
    network: CloudNetwork = state["network"]
    algorithms: Dict[str, Embedder] = state["algorithms"]
    instance = network.make_instance(
        num_sources=config["num_sources"],
        num_destinations=config["num_destinations"],
        num_vms=config["num_vms"],
        chain=ServiceChain.of_length(config["chain_length"]),
        seed=seed * 7919,
        setup_cost_multiplier=state["setup_cost_multiplier"],
        link_capacity=state["link_capacity"],
        vm_capacity=state["vm_capacity"],
    )
    out: Dict[str, Tuple[float, int, float]] = {}
    names = list(algorithms)
    algo_workers = state.get("algo_workers", 1)
    if algo_workers > 1 and len(names) > 1:
        # Per-algorithm dispatch on the oracle's fork-pool utility: the
        # workers inherit ``instance`` (and the often-lambda embedders)
        # by forked memory copy, solve one algorithm each, and only the
        # compact summary triples cross the pipe; the zip merge keeps
        # algorithm order.  Forked solvers each start from the pristine
        # post-build instance, so every algorithm sees the cache state
        # it would have seen running *first* serially (inside a
        # ``workers > 1`` pool worker this silently degrades to the
        # serial loop below -- pool workers are daemonic).
        def _solve(name: str) -> Tuple[float, int, float]:
            start = time.perf_counter()
            forest = algorithms[name](instance)
            elapsed = time.perf_counter() - start
            return (forest.total_cost(), len(forest.used_vms()), elapsed)

        payloads = kernel.fork_map(
            _solve, names, algo_workers, label="run_sweep(algo_workers)"
        )
        for name, payload in zip(names, payloads):
            out[name] = payload
    else:
        for name, embedder in algorithms.items():
            start = time.perf_counter()
            forest = embedder(instance)
            elapsed = time.perf_counter() - start
            out[name] = (forest.total_cost(), len(forest.used_vms()), elapsed)
    return out


#: Whether the missing-fork serial fallback has already been reported --
#: the warning fires once per process, not once per sweep.
_warned_no_fork = False


def _map_cells(
    cells: List[Tuple[Dict[str, int], int]], workers: int
) -> List[Dict[str, Tuple[float, int, float]]]:
    """Evaluate cells, optionally on a fork pool; order is preserved."""
    global _warned_no_fork
    if workers > 1 and len(cells) > 1:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=min(workers, len(cells))) as pool:
                return pool.map(_sweep_cell, cells, chunksize=1)
        if not _warned_no_fork:
            # The pool inherits the network and the (often lambda)
            # embedders by forked memory copy; without fork they cannot
            # be shipped to workers, so the sweep silently losing its
            # parallelism deserves one loud notice.
            _warned_no_fork = True
            warnings.warn(
                f"run_sweep(workers={workers}): the 'fork' start method is "
                "unavailable on this platform; evaluating sweep cells "
                "serially instead",
                RuntimeWarning,
                stacklevel=3,
            )
    return [_sweep_cell(cell) for cell in cells]


def run_sweep(
    network: CloudNetwork,
    parameter: str,
    values: Sequence[float],
    algorithms: Optional[Dict[str, Embedder]] = None,
    seeds: int = 5,
    setup_cost_multiplier: float = 1.0,
    overrides: Optional[Dict[str, int]] = None,
    link_capacity: float = 1.0,
    vm_capacity: float = 1.0,
    workers: int = 1,
    algo_workers: int = 1,
    metrics=None,
) -> SweepResult:
    """Sweep ``parameter`` over ``values`` with everything else at defaults.

    ``overrides`` adjusts the non-swept defaults (e.g. smaller defaults for
    quick CI benches).  Costs use unit capacities, matching the
    shape-normalised setting discussed in DESIGN.md.

    ``workers > 1`` evaluates the (value, seed) cells on a fork-based
    process pool; the merge runs in cell order, so costs and VM counts are
    bit-identical to the serial run (only the measured runtimes differ --
    they report each cell's own wall clock).  Platforms without the fork
    start method fall back to serial evaluation and say so with a
    one-time ``RuntimeWarning``.

    ``algo_workers > 1`` additionally dispatches the independent
    per-algorithm solves *inside* each cell onto the shared fork-pool
    utility (:func:`repro.graph.kernel.fork_map`), merged in algorithm
    order.  Each forked solver sees the pristine just-built instance --
    the state every algorithm would see running first serially -- so
    costs match the serial run wherever distance values are independent
    of oracle cache history (continuous random costs: exact ties have
    measure zero; the perf bench cross-checks this on every run).
    Combining both knobs is safe: cell workers are daemonic, so the
    inner dispatch degrades to the serial loop.

    ``metrics`` (an optional :class:`~repro.obs.recorder.Recorder`)
    folds the per-cell solver timings into the registry *after* the
    pool merge, in deterministic cell order: one ``sweep.cell``
    histogram observation per (cell, algorithm) plus a ``sweep.cells``
    counter.  Anything recorded inside a forked worker dies with its
    copy-on-write memory, so this parent-side merge is the only place
    sweep timings reach a registry.
    """
    if parameter not in DEFAULTS:
        raise ValueError(
            f"unknown parameter {parameter!r}; choose from {sorted(DEFAULTS)}"
        )
    algorithms = algorithms or default_algorithms()
    result = SweepResult(parameter=parameter, values=list(values))
    for name in algorithms:
        result.mean_cost[name] = []
        result.mean_vms_used[name] = []
        result.mean_runtime_s[name] = []

    base = dict(DEFAULTS)
    if overrides:
        base.update(overrides)
    cells: List[Tuple[Dict[str, int], int]] = []
    for value in values:
        config = dict(base)
        config[parameter] = int(value)
        for seed in range(seeds):
            cells.append((config, seed))

    _SWEEP_STATE.update(
        network=network,
        algorithms=algorithms,
        setup_cost_multiplier=setup_cost_multiplier,
        link_capacity=link_capacity,
        vm_capacity=vm_capacity,
        algo_workers=algo_workers,
    )
    try:
        cell_results = _map_cells(cells, workers)
    finally:
        _SWEEP_STATE.clear()

    mx = metrics if metrics else None
    if mx:
        for (config, seed), cell in zip(cells, cell_results):
            mx.inc("sweep.cells", parameter=parameter)
            for name in algorithms:
                mx.observe("sweep.cell", cell[name][2], algo=name)

    for value_index in range(len(values)):
        block = cell_results[value_index * seeds:(value_index + 1) * seeds]
        for name in algorithms:
            result.mean_cost[name].append(
                statistics.mean(r[name][0] for r in block)
            )
            result.mean_vms_used[name].append(
                statistics.mean(r[name][1] for r in block)
            )
            result.mean_runtime_s[name].append(
                statistics.mean(r[name][2] for r in block)
            )
    return result
