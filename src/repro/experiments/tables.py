"""Table I (SOFDA runtime) and Table II (testbed QoE)."""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.baselines import enemp_baseline, est_baseline
from repro.testbed import run_qoe_experiment
from repro.topology import inet_network


def table1_runtime(
    node_counts: Sequence[int] = (1000, 2000, 3000, 4000, 5000),
    source_counts: Sequence[int] = (2, 8, 14, 20, 26),
    num_vms: int = 25,
    num_destinations: int = 6,
    chain_length: int = 3,
    seed: int = 0,
) -> Dict[Tuple[int, int], float]:
    """Table I: SOFDA wall-clock seconds vs |V| and |S|.

    The paper's grid is 1000..5000 nodes x 2..26 sources on the Inet
    synthetic topology; links and data centers scale with the node count
    (2 links and 0.4 DCs per node, the paper's 10000/5000 and 2000/5000
    ratios).
    """
    results: Dict[Tuple[int, int], float] = {}
    for n in node_counts:
        network = inet_network(
            num_nodes=n,
            num_links=2 * n,
            num_datacenters=max(1, int(0.4 * n)),
            seed=seed,
        )
        for s in source_counts:
            instance = network.make_instance(
                num_sources=s,
                num_destinations=num_destinations,
                num_vms=num_vms,
                chain=ServiceChain.of_length(chain_length),
                seed=seed + n + s,
            )
            start = time.perf_counter()
            sofda(instance)
            results[(n, s)] = time.perf_counter() - start
    return results


def table2_qoe(
    trials: int = 30, seed: int = 4
) -> Dict[str, Dict[str, float]]:
    """Table II: startup latency and re-buffering time per algorithm."""
    reports = run_qoe_experiment(
        {
            "SOFDA": lambda inst: sofda(inst, steiner_method="exact").forest,
            "eNEMP": lambda inst: enemp_baseline(inst, steiner_method="exact"),
            "eST": lambda inst: est_baseline(inst, steiner_method="exact"),
        },
        trials=trials,
        seed=seed,
    )
    return {
        name: {
            "startup_latency_s": report.mean_startup_latency,
            "rebuffering_s": report.mean_rebuffering,
        }
        for name, report in reports.items()
    }
