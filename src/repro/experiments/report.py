"""Plain-text rendering of sweep results and tables."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.harness import SweepResult


def render_series(result: SweepResult, title: str = "") -> str:
    """Render one figure panel as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{result.parameter:>16s} | " + " | ".join(
        f"{name:>9s}" for name in result.mean_cost
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, value in enumerate(result.values):
        row = f"{value:>16g} | " + " | ".join(
            f"{result.mean_cost[name][i]:9.2f}" for name in result.mean_cost
        )
        lines.append(row)
    lines.append(f"{'winner':>16s} | " + " ".join(result.winner_per_value()))
    return "\n".join(lines)


def render_table(
    rows: Mapping, headers: Sequence[str], title: str = ""
) -> str:
    """Render ``{row_key: {col: value}}`` as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'':>12s} | " + " | ".join(f"{h:>14s}" for h in headers)
    lines.append(header)
    lines.append("-" * len(header))
    for key, cols in rows.items():
        cells = []
        for h in headers:
            value = cols.get(h, "")
            cells.append(
                f"{value:14.3f}" if isinstance(value, float) else f"{value!s:>14s}"
            )
        lines.append(f"{key!s:>12s} | " + " | ".join(cells))
    return "\n".join(lines)
