"""Experiment harness: every table and figure of Section VIII.

- :mod:`~repro.experiments.harness` -- seed-averaged parameter sweeps over
  any set of algorithms.
- :mod:`~repro.experiments.figures` -- the data series behind Figs. 7-12.
- :mod:`~repro.experiments.tables` -- Table I (runtime) and Table II (QoE).
- :mod:`~repro.experiments.report` -- plain-text rendering in the paper's
  row/series format.
"""

from repro.experiments.harness import (
    ALGORITHMS,
    SweepResult,
    default_algorithms,
    run_churn_comparison,
    run_sweep,
)
from repro.experiments.figures import (
    fig7_cost_function,
    fig8_softlayer,
    fig9_cogent,
    fig10_inet,
    fig11_setup_cost,
    fig12_online,
)
from repro.experiments.tables import table1_runtime, table2_qoe
from repro.experiments.report import render_series, render_table

__all__ = [
    "ALGORITHMS",
    "SweepResult",
    "default_algorithms",
    "run_churn_comparison",
    "run_sweep",
    "fig7_cost_function",
    "fig8_softlayer",
    "fig9_cogent",
    "fig10_inet",
    "fig11_setup_cost",
    "fig12_online",
    "table1_runtime",
    "table2_qoe",
    "render_series",
    "render_table",
]
