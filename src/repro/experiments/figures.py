"""Per-figure data-series builders (Figs. 7-12).

Each function regenerates one figure's data in the paper's format; the
benchmark modules wrap them with ``pytest-benchmark`` and print the series
next to the paper's reported shape.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.sofda import sofda
from repro.baselines import enemp_baseline, est_baseline, st_baseline
from repro.costmodel import fortz_thorup_curve
from repro.experiments.harness import SWEEPS, SweepResult, default_algorithms, run_sweep
from repro.online import RequestGenerator, run_online_comparison
from repro.topology import cogent_network, inet_network, softlayer_network


def fig7_cost_function(samples: int = 121) -> List[Tuple[float, float]]:
    """Fig. 7: the Fortz--Thorup cost curve for p = 1, load 0..1.2."""
    return fortz_thorup_curve(capacity=1.0, max_utilisation=1.2, samples=samples)


def _four_panel(
    network,
    seeds: int,
    include_ilp: bool,
    overrides: Optional[Dict[str, int]] = None,
    sweeps: Optional[Dict[str, Sequence[int]]] = None,
    ilp_time_limit: float = 120.0,
    workers: int = 1,
    metrics=None,
) -> Dict[str, SweepResult]:
    algorithms = default_algorithms(
        include_ilp=include_ilp, ilp_time_limit=ilp_time_limit
    )
    sweeps = sweeps or SWEEPS
    return {
        parameter: run_sweep(
            network, parameter, values,
            algorithms=algorithms, seeds=seeds, overrides=overrides,
            workers=workers, metrics=metrics,
        )
        for parameter, values in sweeps.items()
    }


def fig8_softlayer(
    seeds: int = 5,
    include_ilp: bool = True,
    overrides: Optional[Dict[str, int]] = None,
    sweeps: Optional[Dict[str, Sequence[int]]] = None,
    topology_seed: int = 1,
    ilp_time_limit: float = 120.0,
    workers: int = 1,
    metrics=None,
) -> Dict[str, SweepResult]:
    """Fig. 8: the four sweeps on SoftLayer, including the CPLEX optimum.

    ``ilp_time_limit`` caps each HiGHS solve; past it the incumbent is
    plotted (as the paper does with CPLEX on hard instances).
    ``workers`` farms the sweep cells to a process pool (see
    :func:`~repro.experiments.harness.run_sweep`).
    """
    return _four_panel(
        softlayer_network(seed=topology_seed), seeds, include_ilp, overrides,
        sweeps, ilp_time_limit=ilp_time_limit, workers=workers,
        metrics=metrics,
    )


def fig9_cogent(
    seeds: int = 5,
    overrides: Optional[Dict[str, int]] = None,
    sweeps: Optional[Dict[str, Sequence[int]]] = None,
    topology_seed: int = 1,
    workers: int = 1,
    metrics=None,
) -> Dict[str, SweepResult]:
    """Fig. 9: the four sweeps on Cogent (no CPLEX -- too large)."""
    return _four_panel(
        cogent_network(seed=topology_seed), seeds, False, overrides, sweeps,
        workers=workers, metrics=metrics,
    )


def fig10_inet(
    seeds: int = 3,
    num_nodes: int = 500,
    num_links: int = 1000,
    num_datacenters: int = 200,
    overrides: Optional[Dict[str, int]] = None,
    sweeps: Optional[Dict[str, Sequence[int]]] = None,
    topology_seed: int = 1,
    workers: int = 1,
    metrics=None,
) -> Dict[str, SweepResult]:
    """Fig. 10: the four sweeps on the Inet-style synthetic topology.

    The paper uses 5000 nodes / 10000 links / 2000 DCs; the default here is
    a 10x-scaled-down network so the full figure regenerates in minutes --
    pass the paper's numbers for the full run.
    """
    network = inet_network(
        num_nodes=num_nodes,
        num_links=num_links,
        num_datacenters=num_datacenters,
        seed=topology_seed,
    )
    return _four_panel(
        network, seeds, False, overrides, sweeps, workers=workers,
        metrics=metrics,
    )


def fig11_setup_cost(
    seeds: int = 5,
    multiples: Sequence[float] = (1, 3, 5, 7, 9),
    chain_lengths: Sequence[int] = (3, 4, 5, 6, 7),
    overrides: Optional[Dict[str, int]] = None,
    topology_seed: int = 1,
    workers: int = 1,
    metrics=None,
) -> Dict[str, Dict[int, List[float]]]:
    """Fig. 11: SOFDA's cost (a) and used-VM count (b) vs setup-cost multiple.

    Returns ``{"cost": {|C|: [per-multiple mean]}, "vms": {...}}``.
    """
    network = softlayer_network(seed=topology_seed)
    cost: Dict[int, List[float]] = {}
    vms: Dict[int, List[float]] = {}
    algorithms = {"SOFDA": lambda inst: sofda(inst).forest}
    for length in chain_lengths:
        cost[length] = []
        vms[length] = []
        for multiple in multiples:
            merged_overrides = dict(overrides or {})
            merged_overrides["chain_length"] = int(length)
            sweep = run_sweep(
                network,
                "chain_length",
                [length],
                algorithms=algorithms,
                seeds=seeds,
                setup_cost_multiplier=float(multiple),
                overrides=merged_overrides,
                workers=workers,
                metrics=metrics,
            )
            cost[length].append(sweep.mean_cost["SOFDA"][0])
            vms[length].append(sweep.mean_vms_used["SOFDA"][0])
    return {"cost": cost, "vms": vms}


def fig12_online(
    topology: str = "softlayer",
    num_requests: int = 30,
    seed: int = 0,
    topology_seed: int = 1,
    metrics=None,
) -> Dict[str, List[float]]:
    """Fig. 12: accumulative online cost per algorithm.

    ``topology`` is ``softlayer`` (Fig. 12(a)) or ``cogent`` (Fig. 12(b));
    the request mix follows the paper's per-topology ranges.
    """
    if topology == "softlayer":
        factory = lambda: softlayer_network(seed=topology_seed)  # noqa: E731
    elif topology == "cogent":
        factory = lambda: cogent_network(seed=topology_seed)  # noqa: E731
    else:
        raise ValueError(f"unknown topology {topology!r}")
    network = factory()
    generator = RequestGenerator(network, seed=seed)
    requests = generator.take(num_requests)
    embedders = {
        "SOFDA": lambda inst: sofda(inst).forest,
        "eNEMP": enemp_baseline,
        "eST": est_baseline,
        "ST": st_baseline,
    }
    results = run_online_comparison(factory, embedders, requests,
                                    metrics=metrics)
    return {name: result.accumulative_cost for name, result in results.items()}
