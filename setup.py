"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` via pyproject.toml alone)
fail with ``invalid command 'bdist_wheel'``.  This shim lets pip fall back
to the legacy editable path (``--no-use-pep517``) while all metadata stays
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
