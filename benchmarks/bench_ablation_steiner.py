"""Ablation: Steiner solver choice inside SOFDA (DESIGN.md 5.2).

KMB vs Mehlhorn vs the exact Dreyfus--Wagner DP on instances with few
destinations (where the exact DP is feasible).
"""

import statistics
import time

from _util import shape_check

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.topology import softlayer_network

METHODS = ("kmb", "mehlhorn", "exact")


def _run_ablation(seeds=6):
    network = softlayer_network(seed=1)
    costs = {m: [] for m in METHODS}
    times = {m: [] for m in METHODS}
    for seed in range(seeds):
        instance = network.make_instance(
            num_sources=6, num_destinations=4, num_vms=12,
            chain=ServiceChain.of_length(3), seed=seed,
        )
        for method in METHODS:
            start = time.perf_counter()
            result = sofda(instance, steiner_method=method)
            times[method].append(time.perf_counter() - start)
            costs[method].append(result.cost)
    return costs, times


def test_ablation_steiner(once):
    costs, times = once(_run_ablation)
    print("\nAblation -- Steiner solver inside SOFDA (|D|=4)")
    for method in METHODS:
        print(f"  {method:10s} cost={statistics.mean(costs[method]):8.2f} "
              f"time={statistics.mean(times[method])*1000:7.1f} ms")
    shape_check("exact Steiner never loses to KMB on cost",
                all(e <= k + 1e-6 for e, k in zip(costs["exact"], costs["kmb"])))
    shape_check("KMB within 15% of exact on average",
                statistics.mean(costs["kmb"])
                <= statistics.mean(costs["exact"]) * 1.15)
