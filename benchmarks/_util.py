"""Shared benchmark helpers (importable module; the conftest holds fixtures)."""

from __future__ import annotations

import os


def full_scale() -> bool:
    """Whether to run paper-scale benchmark configurations.

    Set ``SOF_BENCH_FULL=1`` in the environment to enable.
    """
    return os.environ.get("SOF_BENCH_FULL", "0") == "1"


def shape_check(label: str, ok: bool) -> None:
    """Print a PASS/WARN line for a qualitative shape expectation.

    Benchmarks never *fail* on shape (single-seed noise is expected); the
    printed verdicts are collected into EXPERIMENTS.md.
    """
    verdict = "PASS" if ok else "WARN"
    print(f"  [shape:{verdict}] {label}")
