"""Perf micro-benchmark for the indexed graph core and the SOFDA pipeline.

Unlike the figure/table benches (which reproduce the paper), this one
tracks the *repo's own* performance trajectory.  It measures:

- ``dict_dijkstra_ms``: the reference dict-based Dijkstra on the largest
  Table-I instance graph (|V| = 5000, 2|V| links, VMs attached);
- ``oracle_row_ms``: one shared-oracle row on the same graph (contracted
  core + array heap);
- ``sofda_largest_s``: a full SOFDA run on the Table-I (5000, 26) cell --
  the acceptance metric for the indexed-core PR;
- ``online_trace_s`` / ``online_trace_invalidate_s``: a 12-request online
  trace (Fig.-12 style, 5000-node Inet topology) replayed through the
  incremental ``patch_edge_costs`` path and the historical full-rebuild
  path -- the acceptance metric for the incremental-invalidation PR;
- ``online_many_rows_s`` / ``online_many_rows_perrow_s``: a many-cached-
  rows online trace (1250-VM pool, light requests) replayed through the
  cross-row patch planner and the historical per-row rescan repair
  (``OnlineSimulator(planner=False)``) -- the acceptance metric for the
  patch-planner PR, where the per-row path's O(rows x nodes) children-
  list state is the dominant repair cost;
- ``online_dense_patch_s`` / ``online_dense_patch_unshared_s``: a dense-
  patch online trace (hub-and-pods topology whose hot uplinks sit in
  *every* cached row's shortest-path tree; background churn re-prices a
  few uplinks between embeddings) replayed with and without cross-row
  region sharing (``OnlineSimulator(share_regions=False)``) -- the
  acceptance metric for the region-sharing PR, where rediscovering the
  same detached region once per row is the dominant repair cost;
- ``online_churn_s`` / ``online_churn_invalidate_s``: a tenant-churn
  workload (Poisson arrivals, exponential holding-time departures,
  periodic background ticks -- the :mod:`repro.workload` engine) replayed
  through the incremental patch path and the full-rebuild path -- the
  acceptance metric for the workload-engine PR.  Departures release
  leases, so the syncs carry *decrease* batches (the per-row reference
  repair path) that no arrivals-only trace produces;
- ``online_failures_s`` / ``online_failures_invalidate_s``: the churn
  workload with a seeded MTBF/MTTR link-failure process interleaved --
  the acceptance metric for the link-failure PR.  Each failure reaches
  the oracle as a ``patch_topology`` tombstone repair (versus a full
  invalidate in the reference), crossing tenants are mass-rerouted or
  released as disrupted, and each recovery is a decrease-from-infinity
  reinsert;
- ``online_many_rows_kernel_s`` / ``online_dense_patch_kernel_s``: the
  same two tracked traces replayed under the oracle's raw-speed kernel
  tier (``parallel_rows=cpu_count, vectorized=True``) -- the acceptance
  metric for the kernel-tier PR.  The serial list-backed runs above stay
  the reference; the kernel runs must match their forest costs exactly
  (drift 0.0, identical acceptance decisions).  Worker-pool spawn is
  warmed outside the timed windows (``kernel.warm_fork``), the same way
  topology generation is excluded;
- ``online_budget_s`` / ``online_budget_unbounded_s``: a 50k-node Inet
  churn trace replayed with the oracle's row-cache residency budgeted to
  exactly the VM-pool rows (``row_budget_bytes``, the RowCache layer)
  versus unbounded -- the acceptance metric for the memory-bounded-scale
  PR.  The budgeted run must stay under its byte budget between events
  (zero enforcement overshoots), actually evict (the budget binds), and
  still match the unbounded reference bit-for-bit: drift exactly 0.0 and
  identical acceptance decisions, because evicted rows recompute to
  identical labels;
- ``online_churn_phases`` / ``online_many_rows_phases``: per-phase
  attribution (build / repair / query / fork seconds, via the
  :mod:`repro.obs` registry's ``phase_breakdown``) from one metrics-on
  replay of each tracked trace.  The recorder never rides inside a timed
  window -- the strict anchors stay metrics-off -- and the metered
  replays double as the observability layer's bit-identical check
  (``online_churn_metrics_drift`` / ``online_many_rows_metrics_drift``
  must be exactly 0.0 with identical acceptance decisions);
- ``sweep_slice_s`` / ``sweep_serial_s``: a small ``run_sweep`` slice with
  ``workers=4`` vs serial (speedup needs a multi-core runner; single-core
  CI only checks the outputs match);
- ``sweep_algo_s``: the same slice with ``algo_workers=4`` (per-algorithm
  dispatch inside each cell on the shared fork pool), cross-checked
  against the serial outputs.

Results are appended to ``BENCH_perf_core.json`` under the ``"latest"``
key; the checked-in ``"seed"`` entry preserves the pre-refactor numbers so
the speedup stays visible (the online-trace and sweep seeds are the
full-rebuild / serial timings recorded when the incremental paths landed).
The bench never fails on timings (CI runs it as a smoke test); it prints
the measured ratios instead.  Set ``SOF_PERF_STRICT=1`` to make the
*correctness* anchors hard failures: the largest-cell forest cost and the
online-trace costs must match the committed baselines, the planned
repair path must stay bit-identical to the per-row reference on the
many-rows trace, the region-shared repair must stay bit-identical
to the unshared planned path on the dense-patch trace, and the churn
trace's incremental run must stay bit-identical (costs *and* acceptance
decisions) to the full-invalidate reference across its decrease batches,
and the failure trace's topology patches must stay bit-identical (costs,
acceptances, reroutes, *and* disruptions) to the same reference, and the
kernel-tier runs must stay bit-identical (drift exactly 0.0, identical
acceptance decisions) to their serial list-backed references on both
tracked traces, and the budgeted 50k-node churn trace must stay under
its row-cache byte budget with drift exactly 0.0 and identical
acceptance decisions versus the unbounded reference.
"""

from __future__ import annotations

import gc
import json
import os
import random
import time
from pathlib import Path

from _util import shape_check

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.experiments import run_sweep
from repro.graph import FrozenOracle, Graph, kernel
from repro.graph.graph import edge_sort_key
from repro.graph.shortest_paths import dijkstra
from repro.online import OnlineSimulator, RequestGenerator
from repro.topology import inet_network, softlayer_network
from repro.topology.network import CloudNetwork

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_perf_core.json"


def _strict() -> bool:
    """Whether correctness anchors are hard failures (CI perf-smoke)."""
    return os.environ.get("SOF_PERF_STRICT", "0") == "1"


def _largest_table1_instance():
    network = inet_network(
        num_nodes=5000, num_links=10000, num_datacenters=2000, seed=0
    )
    return network.make_instance(
        num_sources=26,
        num_destinations=6,
        num_vms=25,
        chain=ServiceChain.of_length(3),
        seed=0 + 5000 + 26,
    )


def _run_online_trace(incremental: bool):
    """Replay 12 SOFDA requests on a 5000-node topology.

    The paper's online setup: 5 VMs per data center, so each request
    re-sweeps a 200-VM pool over live costs -- the row-reuse case the
    incremental patch exists for.  Topology generation and simulator
    construction happen outside the timed window: only the request loop
    (the part the patch-vs-invalidate choice affects) is measured.
    Returns ``(costs, elapsed_seconds)``.
    """
    network = inet_network(
        num_nodes=5000, num_links=10000, num_datacenters=40, seed=0
    )
    simulator = OnlineSimulator(
        network, vms_per_datacenter=5, incremental=incremental
    )
    generator = RequestGenerator(
        network, seed=0, destinations_range=(4, 5), sources_range=(2, 3)
    )
    requests = generator.take(12)
    gc.collect()  # the timed window should not pay for earlier sections
    start = time.perf_counter()
    costs = [
        simulator.embed(request, lambda inst: sofda(inst).forest)
        for request in requests
    ]
    elapsed = time.perf_counter() - start
    rejected = [i for i, cost in enumerate(costs) if cost is None]
    assert not rejected, (
        f"online-trace requests {rejected} were rejected "
        f"(incremental={incremental}); the trace must embed all 12"
    )
    return costs, elapsed


def _run_many_rows_trace(
    planner: bool, parallel_rows: int = 0, vectorized: bool = False,
    metrics=None,
):
    """Replay 4 light requests against a 1250-VM pool.

    The many-cached-rows case the patch planner exists for: every request
    warms one row per VM (the Procedure-1 sweep), so each patch repairs a
    ~1250-row cache.  Requests are deliberately light (1 source, 2-3
    destinations, 1 service) so the repair engine -- not the embedder --
    dominates the loop; the per-row reference pays its O(rows x nodes)
    children-list build here, the planner never does.  Setup -- including
    the kernel tier's one-time worker-pool spawn -- stays outside the
    timed window.  Returns ``(costs, elapsed_seconds)``.
    """
    network = inet_network(
        num_nodes=5000, num_links=10000, num_datacenters=250, seed=0
    )
    simulator = OnlineSimulator(
        network, vms_per_datacenter=5, incremental=True, planner=planner,
        parallel_rows=parallel_rows, vectorized=vectorized, metrics=metrics,
    )
    generator = RequestGenerator(
        network, seed=0, destinations_range=(2, 3), sources_range=(1, 1),
        chain_length=1,
    )
    requests = generator.take(4)
    if parallel_rows > 1:
        kernel.warm_fork(parallel_rows)
    gc.collect()  # the timed window should not pay for earlier sections
    start = time.perf_counter()
    costs = [
        simulator.embed(request, lambda inst: sofda(inst).forest)
        for request in requests
    ]
    elapsed = time.perf_counter() - start
    rejected = [i for i, cost in enumerate(costs) if cost is None]
    assert not rejected, (
        f"many-rows trace requests {rejected} were rejected "
        f"(planner={planner}, parallel_rows={parallel_rows}, "
        f"vectorized={vectorized}); the trace must embed all 4"
    )
    return costs, elapsed


#: Dense-patch trace shape: pods (layered, chord-dense aggregation
#: subtrees) hang off one hub by a single uplink each, so every churned
#: uplink is a tree edge in *every* cached row -- the dense-patch case
#: region sharing exists for.  Pod nodes keep degree >= 3 so degree-2
#: chain contraction stays out of the picture.
_DENSE_PODS = 40
_DENSE_POD_WIDTH = 4
_DENSE_POD_LEVELS = 3
_DENSE_DCS = 120
_DENSE_REQUESTS = 3
_DENSE_CHURN_ROUNDS = 45
_DENSE_CHURN_LINKS = 4


def _dense_patch_network():
    """Hub-and-pods access topology with single-uplink aggregation pods."""
    graph = Graph()
    graph.add_node("hub")
    dcs = []
    for j in range(_DENSE_DCS):
        dc = ("dc", j)
        graph.add_edge("hub", dc, 1.0)
        dcs.append(dc)
    for i in range(_DENSE_PODS):
        gateway = ("gw", i)
        graph.add_edge("hub", gateway, 1.0)
        prev_level = [gateway]
        for k in range(_DENSE_POD_LEVELS):
            level = [("pod", i, k, w) for w in range(_DENSE_POD_WIDTH)]
            for node in level:
                for prev in prev_level:
                    graph.add_edge(node, prev, 1.0)
            prev_level = level
    return CloudNetwork(name="dense-pods", graph=graph, datacenters=dcs)


def _run_dense_patch_trace(
    share: bool, parallel_rows: int = 0, vectorized: bool = False
):
    """Replay a churn-heavy online trace over the hub-and-pods topology.

    Between embeddings, background (cross-tenant) load keeps re-pricing a
    rotating handful of pod uplinks -- hot shared links that are tree
    edges in every one of the ~600 cached VM-pool rows, so every patch
    repairs the whole cache and the repair engine dominates the loop.
    With ``share_regions=True`` each detached pod region is discovered
    and seeded once per patch instead of once per row; the unshared run
    is the PR-3 planned path, kept as the equivalence reference.  Pod
    internals carry distinct standing loads (heterogeneous steady-state
    utilisation), so shortest-path trees are unique and region sharing
    is exercised on stable signatures.  Setup, the standing-load
    assignment and the first (cache-warming) request stay outside the
    timed window.  Returns ``(costs, elapsed_seconds)``.
    """
    network = _dense_patch_network()
    simulator = OnlineSimulator(
        network, vms_per_datacenter=5, incremental=True, planner=True,
        share_regions=share,
        parallel_rows=parallel_rows, vectorized=vectorized,
    )
    rng = random.Random(7)
    pod_internals = sorted(
        (
            (u, v)
            for u, v, _ in network.graph.edges()
            if u != "hub" and v != "hub"
        ),
        key=repr,
    )
    for u, v in pod_internals:
        simulator.tracker.add_link_load(u, v, 1.0 + rng.random())
    generator = RequestGenerator(
        network, seed=0, destinations_range=(2, 3), sources_range=(1, 1),
        chain_length=1,
    )
    requests = generator.take(_DENSE_REQUESTS)
    uplinks = [("hub", ("gw", i)) for i in range(_DENSE_PODS)]
    costs = [simulator.embed(requests[0], lambda inst: sofda(inst).forest)]
    if parallel_rows > 1:
        kernel.warm_fork(parallel_rows)
    gc.collect()  # the timed window should not pay for earlier sections
    start = time.perf_counter()
    tick = 0
    for request in requests[1:]:
        for _ in range(_DENSE_CHURN_ROUNDS):
            batch = [
                uplinks[(tick + j * 7) % len(uplinks)]
                for j in range(_DENSE_CHURN_LINKS)
            ]
            tick += 1
            simulator.apply_background_load(batch, demand_mbps=0.5)
        costs.append(simulator.embed(request, lambda inst: sofda(inst).forest))
    elapsed = time.perf_counter() - start
    rejected = [i for i, cost in enumerate(costs) if cost is None]
    assert not rejected, (
        f"dense-patch trace requests {rejected} were rejected "
        f"(share={share}, parallel_rows={parallel_rows}, "
        f"vectorized={vectorized}); the trace must embed all "
        f"{_DENSE_REQUESTS}"
    )
    return costs, elapsed


#: Churn trace shape: a mid-size Inet topology (200-VM pool) under ~10
#: time units of Poisson arrivals with exponential holds, so most
#: tenants depart inside the trace and every post-departure sync hands
#: the oracle a decrease-carrying batch.  Background ticks keep
#: re-pricing a rotating link set between arrivals.
_CHURN_NODES = 2500
_CHURN_LINKS = 5000
_CHURN_DCS = 40
_CHURN_HORIZON = 10.0
_CHURN_RATE = 0.9
_CHURN_HOLD_MEAN = 3.0


def _churn_network():
    return inet_network(
        num_nodes=_CHURN_NODES, num_links=_CHURN_LINKS,
        num_datacenters=_CHURN_DCS, seed=0,
    )


def _churn_schedule(network):
    """One embedder-independent churn schedule (pure function of seeds)."""
    from repro.online import RequestGenerator as _RequestGenerator
    from repro.workload import (
        BackgroundChurn,
        ExponentialHolding,
        PoissonArrivals,
        build_schedule,
    )

    generator = _RequestGenerator(
        network, seed=0, destinations_range=(3, 4), sources_range=(2, 2)
    )
    process = PoissonArrivals(generator, rate=_CHURN_RATE, seed=1)
    holding = ExponentialHolding(mean=_CHURN_HOLD_MEAN, seed=2)
    links = sorted(
        ((u, v) for u, v, _ in network.graph.edges()), key=edge_sort_key
    )[:24]
    background = BackgroundChurn(
        period=1.0,
        link_batches=tuple(tuple(links[i::6]) for i in range(6)),
        demand_mbps=2.0,
    )
    return build_schedule(
        process, horizon=_CHURN_HORIZON, holding=holding,
        background=background,
    )


def _run_churn_trace(incremental: bool, metrics=None):
    """Replay the tenant-churn workload through one oracle mode.

    Setup (topology, simulator, schedule build) and the cold VM-pool row
    build (a zero-demand background tick warms all 200 rows) stay
    outside the timed window: only the event loop -- arrivals,
    departures releasing leases, background re-pricing -- is measured.
    Returns ``(ChurnResult, elapsed_seconds)``.
    """
    from repro.workload import WorkloadEngine

    network = _churn_network()
    simulator = OnlineSimulator(
        network, vms_per_datacenter=5, incremental=incremental,
        metrics=metrics,
    )
    schedule = _churn_schedule(network)
    engine = WorkloadEngine(simulator, lambda inst: sofda(inst).forest)
    simulator.apply_background_load((), 0.0)  # warm the pool rows
    gc.collect()  # the timed window should not pay for earlier sections
    start = time.perf_counter()
    result = engine.run(schedule)
    elapsed = time.perf_counter() - start
    assert result.rejected == 0, (
        f"churn trace rejected {result.rejected} requests "
        f"(incremental={incremental}); the trace must embed every arrival"
    )
    assert result.departures == result.accepted and result.final_active == 0, (
        "churn trace must drain every tenant (departures == arrivals)"
    )
    return result, elapsed


#: Failure trace shape: the churn topology and arrival stream with a
#: seeded MTBF/MTTR renewal process over 32 physical links interleaved.
#: Each failure tombstones an edge (incremental) or forces a full
#: invalidate (reference); each recovery is a decrease-from-infinity.
#: Crossing tenants are mass-rerouted or released, so the trace tracks
#: availability decisions alongside acceptance.
_FAILURE_LINKS = 32
_FAILURE_MTBF = 25.0
_FAILURE_MTTR = 1.0


def _failure_schedule(network):
    """One embedder-independent failure schedule (pure function of seeds)."""
    from repro.online import RequestGenerator as _RequestGenerator
    from repro.workload import (
        ExponentialHolding,
        LinkFailureProcess,
        PoissonArrivals,
        build_schedule,
    )

    generator = _RequestGenerator(
        network, seed=0, destinations_range=(3, 4), sources_range=(2, 2)
    )
    process = PoissonArrivals(generator, rate=_CHURN_RATE, seed=1)
    holding = ExponentialHolding(mean=_CHURN_HOLD_MEAN, seed=2)
    # Seeded sample over the datacenter-incident edges.  The low-id
    # edges sit on the Inet seed-triangle hubs and appear in nearly
    # every row's shortest-path tree (every failure a worst-case
    # whole-graph repair region), while uniformly sampled edges are
    # almost never carried by a lease (paths ride the hubs), so neither
    # extreme exercises mass rerouting.  Datacenter-incident links are
    # on tenants' first/last hops but in few rows' trees: crossing
    # leases with representative repair regions.
    datacenters = set(network.datacenters)
    links = sorted(
        (
            (u, v)
            for u, v, _ in network.graph.edges()
            if u in datacenters or v in datacenters
        ),
        key=edge_sort_key,
    )
    links = random.Random(6).sample(links, _FAILURE_LINKS)
    failures = LinkFailureProcess(
        links, mtbf=_FAILURE_MTBF, mttr=_FAILURE_MTTR, seed=3
    )
    return build_schedule(
        process, horizon=_CHURN_HORIZON, holding=holding, failures=failures,
    )


def _run_failure_trace(incremental: bool):
    """Replay the failure-recovery workload through one oracle mode.

    Mirrors :func:`_run_churn_trace` (cold build outside the timed
    window) with link failures and recoveries interleaved into the
    churn: ``incremental=True`` absorbs each topology change as a
    :meth:`FrozenOracle.patch_topology` tombstone repair, the reference
    invalidates and rebuilds every cached row.  Returns
    ``(ChurnResult, elapsed_seconds)``.
    """
    from repro.workload import WorkloadEngine

    network = _churn_network()
    simulator = OnlineSimulator(
        network, vms_per_datacenter=5, incremental=incremental
    )
    schedule = _failure_schedule(network)
    engine = WorkloadEngine(simulator, lambda inst: sofda(inst).forest)
    simulator.apply_background_load((), 0.0)  # warm the pool rows
    gc.collect()  # the timed window should not pay for earlier sections
    start = time.perf_counter()
    result = engine.run(schedule)
    elapsed = time.perf_counter() - start
    assert result.failures > 0 and result.recoveries == result.failures, (
        f"failure trace must fail and recover links "
        f"(failures={result.failures}, recoveries={result.recoveries})"
    )
    return result, elapsed


#: Budgeted-churn trace shape: a 50k-node Inet topology (the scale
#: ceiling PR) whose unbounded VM-pool rows alone hold ~20 MB of label
#: buffers, replayed with the oracle's row-cache residency capped at
#: exactly the pool (``_BUDGET_ROWS`` rows).  Every request's working-set
#: rows then overflow the budget and are evicted after serving; evicted
#: rows recompute bit-identically on the next touch, so the budgeted
#: replay must match the unbounded reference in costs *and* acceptance
#: decisions while never holding more than the budget between events.
_BUDGET_NODES = 50000
_BUDGET_LINKS = 100000
_BUDGET_DCS = 6
_BUDGET_VMS_PER_DC = 4
_BUDGET_ROWS = _BUDGET_DCS * _BUDGET_VMS_PER_DC
_BUDGET_HORIZON = 4.0
_BUDGET_RATE = 0.8
_BUDGET_HOLD_MEAN = 2.0


def _budget_network():
    return inet_network(
        num_nodes=_BUDGET_NODES, num_links=_BUDGET_LINKS,
        num_datacenters=_BUDGET_DCS, seed=0,
    )


def _budget_row_bytes() -> int:
    """Budget for exactly the VM-pool rows (VM nodes join the graph)."""
    from repro.graph.rowcache import row_nbytes

    num_vms = _BUDGET_DCS * _BUDGET_VMS_PER_DC
    return _BUDGET_ROWS * row_nbytes(_BUDGET_NODES + num_vms)


def _budget_schedule(network):
    """One embedder-independent 50k-node schedule (pure function of seeds)."""
    from repro.online import RequestGenerator as _RequestGenerator
    from repro.workload import (
        BackgroundChurn,
        ExponentialHolding,
        PoissonArrivals,
        build_schedule,
    )

    generator = _RequestGenerator(
        network, seed=0, destinations_range=(2, 3), sources_range=(1, 1)
    )
    process = PoissonArrivals(generator, rate=_BUDGET_RATE, seed=1)
    holding = ExponentialHolding(mean=_BUDGET_HOLD_MEAN, seed=2)
    links = sorted(
        ((u, v) for u, v, _ in network.graph.edges()), key=edge_sort_key
    )[:12]
    background = BackgroundChurn(
        period=1.0,
        link_batches=tuple(tuple(links[i::3]) for i in range(3)),
        demand_mbps=2.0,
    )
    return build_schedule(
        process, horizon=_BUDGET_HORIZON, holding=holding,
        background=background,
    )


def _run_budget_trace(row_budget_bytes):
    """Replay the 50k-node churn workload under one residency budget.

    Mirrors :func:`_run_churn_trace` (topology, simulator, schedule and
    the VM-pool warm stay outside the timed window).
    ``row_budget_bytes=None`` is the unbounded reference.  Returns
    ``(ChurnResult, elapsed_seconds)``; ``ChurnResult.cache_stats``
    carries the oracle's end-of-run residency counters.
    """
    from repro.workload import WorkloadEngine

    network = _budget_network()
    simulator = OnlineSimulator(
        network, vms_per_datacenter=_BUDGET_VMS_PER_DC, incremental=True,
        row_budget_bytes=row_budget_bytes,
    )
    schedule = _budget_schedule(network)
    engine = WorkloadEngine(simulator, lambda inst: sofda(inst).forest)
    simulator.apply_background_load((), 0.0)  # warm the pool rows
    gc.collect()  # the timed window should not pay for earlier sections
    start = time.perf_counter()
    result = engine.run(schedule)
    elapsed = time.perf_counter() - start
    assert result.rejected == 0, (
        f"budget trace rejected {result.rejected} requests "
        f"(budget={row_budget_bytes}); the trace must embed every arrival"
    )
    return result, elapsed


def _run_sweep_slice(network, workers: int, algo_workers: int = 1):
    """One tracked sweep slice; returns ``(result, elapsed_seconds)``.

    Large enough (12 cells, near-default instance shapes) that per-cell
    work amortizes fork-pool startup on a multi-core runner.
    """
    if workers > 1 or algo_workers > 1:
        kernel.warm_fork(max(workers, algo_workers))
    start = time.perf_counter()
    result = run_sweep(
        network, "num_vms", [5, 15, 25], seeds=4,
        overrides={"num_sources": 6, "num_destinations": 4,
                   "chain_length": 3},
        workers=workers, algo_workers=algo_workers,
    )
    return result, time.perf_counter() - start


def run_perf_core() -> dict:
    """Measure the tracked core timings; returns a plain dict."""
    instance = _largest_table1_instance()
    graph = instance.graph
    sources = sorted(instance.sources, key=repr)[:8]

    start = time.perf_counter()
    for s in sources:
        dijkstra(graph, s)
    dict_ms = (time.perf_counter() - start) / len(sources) * 1000.0

    oracle = FrozenOracle(
        graph, hot=instance.vms | instance.sources | instance.destinations
    )
    oracle.distance(sources[0], sources[1])  # force the core build
    start = time.perf_counter()
    oracle.warm(sorted(instance.vms, key=repr)[:8])
    row_ms = (time.perf_counter() - start) / 8 * 1000.0

    # Best of three: single-run wall clock on a shared machine is noisy,
    # and the minimum is the standard low-variance timing estimator.
    sofda_s = float("inf")
    for _ in range(3):
        fresh = _largest_table1_instance()
        start = time.perf_counter()
        result = sofda(fresh)
        sofda_s = min(sofda_s, time.perf_counter() - start)
    sofda_cost = result.cost

    # Drop the Table-I instances (graphs, warmed oracle rows, forests)
    # before the trace sections: a large standing heap taxes every GC
    # pass inside the allocation-heavy traces and blurs their ratios.
    del instance, graph, oracle, fresh, result

    rebuild_costs, trace_invalidate_s = _run_online_trace(incremental=False)
    patch_costs, trace_patch_s = _run_online_trace(incremental=True)

    # Interleaved best-of-two: the planner-vs-per-row ratio is the PR-3
    # acceptance metric, and a single ~35 s run on a shared machine can
    # absorb a load spike on either side of the comparison.  The kernel
    # run (parallel rows + vectorized labels, the kernel-tier acceptance
    # metric) rides the same interleave against the same serial planner
    # reference.
    kernel_rows = os.cpu_count() or 1
    many_rows_perrow_s = many_rows_planner_s = float("inf")
    many_rows_kernel_s = float("inf")
    for _ in range(2):
        perrow_costs, elapsed = _run_many_rows_trace(planner=False)
        many_rows_perrow_s = min(many_rows_perrow_s, elapsed)
        planner_costs, elapsed = _run_many_rows_trace(planner=True)
        many_rows_planner_s = min(many_rows_planner_s, elapsed)
        kernel_costs, elapsed = _run_many_rows_trace(
            planner=True, parallel_rows=kernel_rows, vectorized=True
        )
        many_rows_kernel_s = min(many_rows_kernel_s, elapsed)

    # Same interleaved best-of-two for the shared-vs-unshared ratio, the
    # region-sharing acceptance metric, plus the kernel run over the
    # shared configuration.
    dense_unshared_s = dense_shared_s = float("inf")
    dense_kernel_s = float("inf")
    for _ in range(2):
        unshared_costs, elapsed = _run_dense_patch_trace(share=False)
        dense_unshared_s = min(dense_unshared_s, elapsed)
        shared_costs, elapsed = _run_dense_patch_trace(share=True)
        dense_shared_s = min(dense_shared_s, elapsed)
        dense_kernel_costs, elapsed = _run_dense_patch_trace(
            share=True, parallel_rows=kernel_rows, vectorized=True
        )
        dense_kernel_s = min(dense_kernel_s, elapsed)

    # Interleaved best-of-two again for the churn incremental-vs-
    # invalidate ratio, the workload-engine acceptance metric.
    churn_invalidate_s = churn_patch_s = float("inf")
    for _ in range(2):
        churn_rebuild, elapsed = _run_churn_trace(incremental=False)
        churn_invalidate_s = min(churn_invalidate_s, elapsed)
        churn_patched, elapsed = _run_churn_trace(incremental=True)
        churn_patch_s = min(churn_patch_s, elapsed)

    # Interleaved best-of-two for the failure-recovery ratio: topology
    # tombstone patches versus invalidate-and-rebuild per link event.
    failures_invalidate_s = failures_patch_s = float("inf")
    for _ in range(2):
        failures_rebuild, elapsed = _run_failure_trace(incremental=False)
        failures_invalidate_s = min(failures_invalidate_s, elapsed)
        failures_patched, elapsed = _run_failure_trace(incremental=True)
        failures_patch_s = min(failures_patch_s, elapsed)

    # Per-phase attribution: one metrics-on pass per tracked trace.  The
    # recorder never rides inside the timed windows above (the strict
    # anchors stay metrics-off, so the zero-overhead-off invariant is
    # what the ratios measure); these passes feed the ``*_phases`` keys
    # and double as the observability layer's bit-identical check on
    # real traces.
    from repro.obs import MetricsRegistry, Recorder, phase_breakdown

    churn_recorder = Recorder(registry=MetricsRegistry())
    churn_metered, _ = _run_churn_trace(
        incremental=True, metrics=churn_recorder
    )
    many_rows_recorder = Recorder(registry=MetricsRegistry())
    metered_costs, _ = _run_many_rows_trace(
        planner=True, metrics=many_rows_recorder
    )
    churn_phases = {
        k: round(v, 4)
        for k, v in phase_breakdown(churn_recorder.snapshot()).items()
    }
    many_rows_phases = {
        k: round(v, 4)
        for k, v in phase_breakdown(many_rows_recorder.snapshot()).items()
    }

    # Budgeted-vs-unbounded 50k-node churn: the memory-bounded-scale
    # acceptance metric.  One run each (the metric is bounded residency
    # with zero drift, not a speed ratio; the timings are informational).
    budget_bytes = _budget_row_bytes()
    budget_unbounded, budget_unbounded_s = _run_budget_trace(None)
    budget_bounded, budget_bounded_s = _run_budget_trace(budget_bytes)
    budget_stats = budget_bounded.cache_stats or {}

    sweep_network = softlayer_network(seed=1)
    sweep_serial, sweep_serial_s = _run_sweep_slice(sweep_network, workers=1)
    sweep_pooled, sweep_pooled_s = _run_sweep_slice(sweep_network, workers=4)
    sweep_algo, sweep_algo_s = _run_sweep_slice(
        sweep_network, workers=1, algo_workers=4
    )

    return {
        "dict_dijkstra_ms": round(dict_ms, 3),
        "oracle_row_ms": round(row_ms, 3),
        "sofda_largest_s": round(sofda_s, 4),
        "sofda_largest_cost": sofda_cost,
        "online_trace_s": round(trace_patch_s, 4),
        "online_trace_invalidate_s": round(trace_invalidate_s, 4),
        "online_trace_cost": sum(patch_costs),
        "online_trace_rebuild_cost": sum(rebuild_costs),
        "online_trace_max_request_drift": max(
            abs(a - b) for a, b in zip(patch_costs, rebuild_costs)
        ),
        "online_many_rows_s": round(many_rows_planner_s, 4),
        "online_many_rows_perrow_s": round(many_rows_perrow_s, 4),
        "online_many_rows_kernel_s": round(many_rows_kernel_s, 4),
        "online_many_rows_cost": sum(planner_costs),
        "online_many_rows_planner_drift": max(
            abs(a - b) for a, b in zip(planner_costs, perrow_costs)
        ),
        "online_many_rows_kernel_drift": max(
            abs(a - b) for a, b in zip(kernel_costs, planner_costs)
        ),
        "online_many_rows_kernel_decisions_match": (
            [c is None for c in kernel_costs]
            == [c is None for c in planner_costs]
        ),
        "online_dense_patch_s": round(dense_shared_s, 4),
        "online_dense_patch_unshared_s": round(dense_unshared_s, 4),
        "online_dense_patch_kernel_s": round(dense_kernel_s, 4),
        "online_dense_patch_cost": sum(shared_costs),
        "online_dense_patch_share_drift": max(
            abs(a - b) for a, b in zip(shared_costs, unshared_costs)
        ),
        "online_dense_patch_kernel_drift": max(
            abs(a - b) for a, b in zip(dense_kernel_costs, shared_costs)
        ),
        "online_dense_patch_kernel_decisions_match": (
            [c is None for c in dense_kernel_costs]
            == [c is None for c in shared_costs]
        ),
        "kernel_parallel_rows": kernel_rows,
        "online_churn_s": round(churn_patch_s, 4),
        "online_churn_invalidate_s": round(churn_invalidate_s, 4),
        "online_churn_cost": churn_patched.total_cost,
        "online_churn_max_request_drift": max(
            abs(a - b)
            for a, b in zip(
                churn_patched.per_request_cost, churn_rebuild.per_request_cost
            )
        ),
        "online_churn_decisions_match": (
            [c is None for c in churn_patched.per_request_cost]
            == [c is None for c in churn_rebuild.per_request_cost]
            and churn_patched.departures == churn_rebuild.departures
        ),
        "online_failures_s": round(failures_patch_s, 4),
        "online_failures_invalidate_s": round(failures_invalidate_s, 4),
        "online_failures_cost": failures_patched.total_cost,
        "online_failures_max_request_drift": max(
            abs(a - b) if a is not None and b is not None else (
                0.0 if a is None and b is None else float("inf")
            )
            for a, b in zip(
                failures_patched.per_request_cost,
                failures_rebuild.per_request_cost,
            )
        ),
        "online_failures_decisions_match": (
            [c is None for c in failures_patched.per_request_cost]
            == [c is None for c in failures_rebuild.per_request_cost]
            and failures_patched.rerouted == failures_rebuild.rerouted
            and failures_patched.disrupted == failures_rebuild.disrupted
            and failures_patched.departures == failures_rebuild.departures
        ),
        "online_failures_rerouted": failures_patched.rerouted,
        "online_failures_disrupted": failures_patched.disrupted,
        "online_churn_phases": churn_phases,
        "online_many_rows_phases": many_rows_phases,
        "online_churn_metrics_drift": max(
            abs(a - b)
            for a, b in zip(
                churn_metered.per_request_cost, churn_patched.per_request_cost
            )
        ),
        "online_churn_metrics_decisions_match": (
            [c is None for c in churn_metered.per_request_cost]
            == [c is None for c in churn_patched.per_request_cost]
            and churn_metered.departures == churn_patched.departures
        ),
        "online_many_rows_metrics_drift": max(
            abs(a - b) for a, b in zip(metered_costs, planner_costs)
        ),
        "online_budget_s": round(budget_bounded_s, 4),
        "online_budget_unbounded_s": round(budget_unbounded_s, 4),
        "online_budget_nodes": _BUDGET_NODES,
        "online_budget_bytes": budget_bytes,
        "online_budget_resident_bytes": budget_stats.get("total_bytes", 0),
        "online_budget_peak_bytes": budget_stats.get("peak_bytes", 0),
        "online_budget_unbounded_peak_bytes": (
            (budget_unbounded.cache_stats or {}).get("peak_bytes", 0)
        ),
        "online_budget_evictions": budget_stats.get("evictions", 0),
        "online_budget_overshoots": budget_stats.get("overshoots", 0),
        "online_budget_cost": budget_bounded.total_cost,
        "online_budget_max_request_drift": max(
            abs(a - b) if a is not None and b is not None else (
                0.0 if a is None and b is None else float("inf")
            )
            for a, b in zip(
                budget_bounded.per_request_cost,
                budget_unbounded.per_request_cost,
            )
        ),
        "online_budget_decisions_match": (
            [c is None for c in budget_bounded.per_request_cost]
            == [c is None for c in budget_unbounded.per_request_cost]
            and budget_bounded.departures == budget_unbounded.departures
        ),
        "online_budget_under_budget": (
            budget_stats.get("total_bytes", 0) <= budget_bytes
            and budget_stats.get("overshoots", 1) == 0
        ),
        "sweep_slice_s": round(sweep_pooled_s, 4),
        "sweep_serial_s": round(sweep_serial_s, 4),
        "sweep_algo_s": round(sweep_algo_s, 4),
        "sweep_outputs_match": (
            sweep_pooled.mean_cost == sweep_serial.mean_cost
            and sweep_pooled.mean_vms_used == sweep_serial.mean_vms_used
        ),
        "sweep_algo_outputs_match": (
            sweep_algo.mean_cost == sweep_serial.mean_cost
            and sweep_algo.mean_vms_used == sweep_serial.mean_vms_used
        ),
    }


def test_perf_core(once):
    measured = once(run_perf_core)

    record = {}
    if RESULTS_PATH.exists():
        record = json.loads(RESULTS_PATH.read_text())
    record["latest"] = measured
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    seed = record.get("seed", {})
    print("\nPerf core -- seed vs latest")
    for key in ("dict_dijkstra_ms", "oracle_row_ms", "sofda_largest_s",
                "online_trace_s", "online_many_rows_s",
                "online_many_rows_kernel_s", "online_dense_patch_s",
                "online_dense_patch_kernel_s", "online_churn_s",
                "online_failures_s", "online_budget_s", "sweep_slice_s"):
        before = seed.get(key)
        after = measured[key]
        ratio = f"  ({before / after:.2f}x)" if before else ""
        print(f"  {key:>18}: {before} -> {after}{ratio}")
    print(
        f"  online trace: invalidate {measured['online_trace_invalidate_s']}s"
        f" -> patch {measured['online_trace_s']}s"
        f" ({measured['online_trace_invalidate_s'] / measured['online_trace_s']:.2f}x)"
    )
    print(
        f"  many-rows trace: per-row {measured['online_many_rows_perrow_s']}s"
        f" -> planner {measured['online_many_rows_s']}s"
        f" ({measured['online_many_rows_perrow_s'] / measured['online_many_rows_s']:.2f}x)"
    )
    print(
        f"  dense-patch trace: unshared {measured['online_dense_patch_unshared_s']}s"
        f" -> shared {measured['online_dense_patch_s']}s"
        f" ({measured['online_dense_patch_unshared_s'] / measured['online_dense_patch_s']:.2f}x)"
    )
    print(
        f"  kernel tier (parallel_rows={measured['kernel_parallel_rows']},"
        f" vectorized): many-rows {measured['online_many_rows_s']}s"
        f" -> {measured['online_many_rows_kernel_s']}s"
        f" ({measured['online_many_rows_s'] / measured['online_many_rows_kernel_s']:.2f}x),"
        f" dense-patch {measured['online_dense_patch_s']}s"
        f" -> {measured['online_dense_patch_kernel_s']}s"
        f" ({measured['online_dense_patch_s'] / measured['online_dense_patch_kernel_s']:.2f}x)"
    )
    print(
        f"  churn trace: invalidate {measured['online_churn_invalidate_s']}s"
        f" -> patch {measured['online_churn_s']}s"
        f" ({measured['online_churn_invalidate_s'] / measured['online_churn_s']:.2f}x)"
    )
    print(
        f"  failure trace: invalidate {measured['online_failures_invalidate_s']}s"
        f" -> patch {measured['online_failures_s']}s"
        f" ({measured['online_failures_invalidate_s'] / measured['online_failures_s']:.2f}x,"
        f" {measured['online_failures_rerouted']} rerouted,"
        f" {measured['online_failures_disrupted']} disrupted)"
    )
    print(
        "  phase breakdown (metrics-on replays): churn "
        + " ".join(
            f"{k}={v}s" for k, v in measured["online_churn_phases"].items()
        )
        + "; many-rows "
        + " ".join(
            f"{k}={v}s"
            for k, v in measured["online_many_rows_phases"].items()
        )
    )
    print(
        f"  budget trace ({measured['online_budget_nodes']} nodes):"
        f" unbounded {measured['online_budget_unbounded_s']}s"
        f" (peak {measured['online_budget_unbounded_peak_bytes']} B)"
        f" -> budgeted {measured['online_budget_s']}s"
        f" (budget {measured['online_budget_bytes']} B,"
        f" resident {measured['online_budget_resident_bytes']} B,"
        f" {measured['online_budget_evictions']} evictions,"
        f" {measured['online_budget_overshoots']} overshoots)"
    )
    print(
        f"  sweep slice: serial {measured['sweep_serial_s']}s"
        f" -> workers=4 {measured['sweep_slice_s']}s"
        f" ({measured['sweep_serial_s'] / measured['sweep_slice_s']:.2f}x,"
        " needs a multi-core runner)"
    )
    print(
        f"  sweep slice: algo_workers=4 {measured['sweep_algo_s']}s"
        f" ({measured['sweep_serial_s'] / measured['sweep_algo_s']:.2f}x,"
        " needs a multi-core runner)"
    )

    # Correctness anchors -- hard failures under SOF_PERF_STRICT=1.
    cost_ok = (
        seed.get("sofda_largest_cost") is None
        # Hash-ordered summation wobbles the last ulp (seed does too).
        or abs(measured["sofda_largest_cost"] - seed["sofda_largest_cost"])
        <= 1e-9
    )
    trace_ok = measured["online_trace_max_request_drift"] <= 1e-9
    trace_baseline_ok = (
        seed.get("online_trace_cost") is None
        or abs(measured["online_trace_cost"] - seed["online_trace_cost"])
        <= 1e-6
    )
    # The planner and the per-row reference run the same repair algorithm
    # with identical tie-breaks, so the tracked trace must not diverge by
    # even an ulp.
    planner_ok = measured["online_many_rows_planner_drift"] == 0.0
    many_rows_baseline_ok = (
        seed.get("online_many_rows_cost") is None
        or abs(measured["online_many_rows_cost"]
               - seed["online_many_rows_cost"]) <= 1e-6
    )
    # The kernel tier only ever serves rows the serial path would have
    # served (row-serving identity), so both kernel runs must not diverge
    # from their serial references by even an ulp -- in costs or in
    # acceptance decisions.
    kernel_ok = (
        measured["online_many_rows_kernel_drift"] == 0.0
        and measured["online_many_rows_kernel_decisions_match"]
        and measured["online_dense_patch_kernel_drift"] == 0.0
        and measured["online_dense_patch_kernel_decisions_match"]
    )
    # Region sharing reuses verified-identical detached regions, so the
    # dense-patch trace must not diverge from the unshared planned path
    # by even an ulp.
    share_ok = measured["online_dense_patch_share_drift"] == 0.0
    dense_baseline_ok = (
        seed.get("online_dense_patch_cost") is None
        or abs(measured["online_dense_patch_cost"]
               - seed["online_dense_patch_cost"]) <= 1e-6
    )
    # Decrease batches route through the per-row reference repair, which
    # is bit-identical to a rebuild, so the churn trace must not diverge
    # from the full-invalidate path by even an ulp -- in costs or in
    # acceptance decisions.
    churn_ok = (
        measured["online_churn_max_request_drift"] == 0.0
        and measured["online_churn_decisions_match"]
    )
    churn_baseline_ok = (
        seed.get("online_churn_cost") is None
        or abs(measured["online_churn_cost"] - seed["online_churn_cost"])
        <= 1e-6
    )
    # The recorder only observes (one falsy check per seam when off,
    # clock reads + dict bumps when on), so the metered replays must not
    # diverge from their metrics-off twins by even an ulp.
    metrics_ok = (
        measured["online_churn_metrics_drift"] == 0.0
        and measured["online_churn_metrics_decisions_match"]
        and measured["online_many_rows_metrics_drift"] == 0.0
    )
    # Topology tombstone repairs serve the same shortest paths as a
    # rebuild over the mutated graph, so the failure trace must not
    # diverge in forest costs, acceptances, reroutes, or disruptions.
    failures_ok = (
        measured["online_failures_max_request_drift"] == 0.0
        and measured["online_failures_decisions_match"]
    )
    failures_baseline_ok = (
        seed.get("online_failures_cost") is None
        or abs(measured["online_failures_cost"]
               - seed["online_failures_cost"]) <= 1e-6
    )
    # Evicted rows recompute to bit-identical labels, so the budgeted
    # 50k-node replay must match the unbounded reference exactly (costs
    # and acceptance decisions) while staying under its byte budget with
    # zero enforcement overshoots.
    budget_ok = (
        measured["online_budget_max_request_drift"] == 0.0
        and measured["online_budget_decisions_match"]
        and measured["online_budget_under_budget"]
    )
    if _strict():
        assert cost_ok, "largest-cell forest cost drifted from the baseline"
        assert trace_ok, "patched online trace diverged from full rebuild"
        assert trace_baseline_ok, "online-trace cost drifted from the baseline"
        assert planner_ok, (
            "planned repair diverged from the per-row reference on the "
            "many-rows trace"
        )
        assert many_rows_baseline_ok, (
            "many-rows trace cost drifted from the baseline"
        )
        assert kernel_ok, (
            "kernel-tier run (parallel rows + vectorized labels) "
            "diverged from the serial reference"
        )
        assert share_ok, (
            "region-shared repair diverged from the unshared planned "
            "path on the dense-patch trace"
        )
        assert dense_baseline_ok, (
            "dense-patch trace cost drifted from the baseline"
        )
        assert churn_ok, (
            "churn trace (decrease batches) diverged from the "
            "full-invalidate reference"
        )
        assert churn_baseline_ok, (
            "churn trace cost drifted from the baseline"
        )
        assert failures_ok, (
            "failure trace (topology patches) diverged from the "
            "full-invalidate reference"
        )
        assert failures_baseline_ok, (
            "failure trace cost drifted from the baseline"
        )
        assert metrics_ok, (
            "metrics-on replay diverged from the metrics-off reference"
        )
        assert budget_ok, (
            "budgeted 50k-node churn trace drifted from the unbounded "
            "reference or exceeded its row-cache byte budget"
        )
        assert measured["sweep_outputs_match"], "pooled sweep != serial sweep"
        assert measured["sweep_algo_outputs_match"], (
            "algo-parallel sweep != serial sweep"
        )
    shape_check("forest cost unchanged on the seeded largest cell", cost_ok)
    shape_check(
        "largest Table-I cell at least 3x faster than seed",
        not seed.get("sofda_largest_s")
        or measured["sofda_largest_s"] * 3 <= seed["sofda_largest_s"],
    )
    shape_check("online trace: patch == rebuild, bit-identical forests",
                trace_ok)
    shape_check("online trace cost matches committed baseline",
                trace_baseline_ok)
    shape_check(
        "online trace at least 2x faster than the full-invalidate path",
        measured["online_trace_s"] * 2
        <= measured["online_trace_invalidate_s"],
    )
    shape_check("many-rows trace: planner == per-row, bit-identical forests",
                planner_ok)
    shape_check("many-rows trace cost matches committed baseline",
                many_rows_baseline_ok)
    shape_check(
        "many-rows trace at least 1.3x faster with the patch planner",
        measured["online_many_rows_s"] * 1.3
        <= measured["online_many_rows_perrow_s"],
    )
    shape_check("kernel tier: drift exactly 0.0 and identical acceptance "
                "decisions on both tracked traces", kernel_ok)
    shape_check(
        "many-rows trace at least 1.5x faster under the kernel tier",
        measured["online_many_rows_kernel_s"] * 1.5
        <= measured["online_many_rows_s"],
    )
    shape_check(
        "dense-patch trace faster under the kernel tier",
        measured["online_dense_patch_kernel_s"]
        <= measured["online_dense_patch_s"],
    )
    shape_check("dense-patch trace: shared == unshared, bit-identical forests",
                share_ok)
    shape_check("dense-patch trace cost matches committed baseline",
                dense_baseline_ok)
    shape_check(
        "dense-patch trace at least 1.2x faster with region sharing",
        measured["online_dense_patch_s"] * 1.2
        <= measured["online_dense_patch_unshared_s"],
    )
    shape_check("churn trace: patch == rebuild, costs and acceptance "
                "decisions bit-identical", churn_ok)
    shape_check("churn trace cost matches committed baseline",
                churn_baseline_ok)
    shape_check(
        "churn trace at least 1.2x faster than the full-invalidate path",
        measured["online_churn_s"] * 1.2
        <= measured["online_churn_invalidate_s"],
    )
    shape_check("failure trace: patch == rebuild, costs and availability "
                "decisions bit-identical", failures_ok)
    shape_check("failure trace cost matches committed baseline",
                failures_baseline_ok)
    shape_check(
        "failure trace at least 1.2x faster than the full-invalidate path",
        measured["online_failures_s"] * 1.2
        <= measured["online_failures_invalidate_s"],
    )
    shape_check("metrics-on replay: drift exactly 0.0 and identical "
                "acceptance decisions vs metrics-off", metrics_ok)
    shape_check("budget trace: budgeted == unbounded, drift exactly 0.0 "
                "and identical acceptance decisions", budget_ok)
    shape_check(
        "budget trace: resident rows never exceed the byte budget",
        measured["online_budget_under_budget"],
    )
    shape_check(
        "budget trace: the budget actually bound (evictions occurred)",
        measured["online_budget_evictions"] > 0,
    )
    shape_check("pooled sweep output identical to serial",
                measured["sweep_outputs_match"])
    shape_check("algo-parallel sweep output identical to serial",
                measured["sweep_algo_outputs_match"])
    shape_check(
        "pooled sweep at least 2x faster than serial (multi-core runners)",
        measured["sweep_slice_s"] * 2 <= measured["sweep_serial_s"],
    )
