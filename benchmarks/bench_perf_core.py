"""Perf micro-benchmark for the indexed graph core and the SOFDA pipeline.

Unlike the figure/table benches (which reproduce the paper), this one
tracks the *repo's own* performance trajectory.  It measures:

- ``dict_dijkstra_ms``: the reference dict-based Dijkstra on the largest
  Table-I instance graph (|V| = 5000, 2|V| links, VMs attached);
- ``oracle_row_ms``: one shared-oracle row on the same graph (contracted
  core + array heap);
- ``sofda_largest_s``: a full SOFDA run on the Table-I (5000, 26) cell --
  the acceptance metric for the indexed-core PR.

Results are appended to ``BENCH_perf_core.json`` under the ``"latest"``
key; the checked-in ``"seed"`` entry preserves the pre-refactor numbers so
the speedup stays visible.  The bench never fails on timings (CI runs it
as a smoke test); it prints the measured ratios instead.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _util import shape_check

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.graph import FrozenOracle
from repro.graph.shortest_paths import dijkstra
from repro.topology import inet_network

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_perf_core.json"


def _largest_table1_instance():
    network = inet_network(
        num_nodes=5000, num_links=10000, num_datacenters=2000, seed=0
    )
    return network.make_instance(
        num_sources=26,
        num_destinations=6,
        num_vms=25,
        chain=ServiceChain.of_length(3),
        seed=0 + 5000 + 26,
    )


def run_perf_core() -> dict:
    """Measure the three core timings; returns a plain dict."""
    instance = _largest_table1_instance()
    graph = instance.graph
    sources = sorted(instance.sources, key=repr)[:8]

    start = time.perf_counter()
    for s in sources:
        dijkstra(graph, s)
    dict_ms = (time.perf_counter() - start) / len(sources) * 1000.0

    oracle = FrozenOracle(
        graph, hot=instance.vms | instance.sources | instance.destinations
    )
    oracle.distance(sources[0], sources[1])  # force the core build
    start = time.perf_counter()
    oracle.warm(sorted(instance.vms, key=repr)[:8])
    row_ms = (time.perf_counter() - start) / 8 * 1000.0

    # Best of three: single-run wall clock on a shared machine is noisy,
    # and the minimum is the standard low-variance timing estimator.
    sofda_s = float("inf")
    for _ in range(3):
        fresh = _largest_table1_instance()
        start = time.perf_counter()
        result = sofda(fresh)
        sofda_s = min(sofda_s, time.perf_counter() - start)

    return {
        "dict_dijkstra_ms": round(dict_ms, 3),
        "oracle_row_ms": round(row_ms, 3),
        "sofda_largest_s": round(sofda_s, 4),
        "sofda_largest_cost": result.cost,
    }


def test_perf_core(once):
    measured = once(run_perf_core)

    record = {}
    if RESULTS_PATH.exists():
        record = json.loads(RESULTS_PATH.read_text())
    record["latest"] = measured
    RESULTS_PATH.write_text(json.dumps(record, indent=2) + "\n")

    seed = record.get("seed", {})
    print("\nPerf core -- seed vs latest")
    for key in ("dict_dijkstra_ms", "oracle_row_ms", "sofda_largest_s"):
        before = seed.get(key)
        after = measured[key]
        ratio = f"  ({before / after:.2f}x)" if before else ""
        print(f"  {key:>18}: {before} -> {after}{ratio}")

    shape_check(
        "forest cost unchanged on the seeded largest cell",
        seed.get("sofda_largest_cost") is None
        # Hash-ordered summation wobbles the last ulp (seed does too).
        or abs(measured["sofda_largest_cost"] - seed["sofda_largest_cost"])
        <= 1e-9,
    )
    shape_check(
        "largest Table-I cell at least 3x faster than seed",
        not seed.get("sofda_largest_s")
        or measured["sofda_largest_s"] * 3 <= seed["sofda_largest_s"],
    )
