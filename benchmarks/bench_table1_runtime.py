"""Table I: SOFDA running time vs |V| (1000..5000) and |S| (2..26).

Paper numbers (seconds): 1.35 at (1000, 2) up to 19.65 at (5000, 26);
runtime grows with both dimensions.  Our pure-Python SOFDA is faster in
absolute terms (different k-stroll/Steiner substitutes); the shape --
monotone growth in both |V| and |S| -- is what the bench verifies.
"""

from _util import full_scale, shape_check

from repro.experiments import table1_runtime

PAPER = {
    (1000, 2): 1.35, (1000, 26): 16.03,
    (5000, 2): 2.25, (5000, 26): 19.65,
}


def _config():
    if full_scale():
        return dict(node_counts=(1000, 2000, 3000, 4000, 5000),
                    source_counts=(2, 8, 14, 20, 26))
    return dict(node_counts=(1000, 3000, 5000), source_counts=(2, 14, 26))


def test_table1_runtime(once):
    config = _config()
    results = once(table1_runtime, **config)
    print("\nTable I -- SOFDA runtime in seconds "
          "(paper: 1.35 @ (1000,2) ... 19.65 @ (5000,26))")
    nodes = list(config["node_counts"])
    sources = list(config["source_counts"])
    header = "  |V|     " + "  ".join(f"|S|={s:>3d}" for s in sources)
    print(header)
    for n in nodes:
        row = "  ".join(f"{results[(n, s)]:7.2f}" for s in sources)
        print(f"  {n:<7d} {row}")

    shape_check("runtime grows with |S| at every |V|",
                all(results[(n, sources[0])] <= results[(n, sources[-1])] * 1.2
                    for n in nodes))
    shape_check("runtime grows with |V| at max |S|",
                results[(nodes[0], sources[-1])]
                <= results[(nodes[-1], sources[-1])] * 1.2)
    shape_check("largest case stays under the paper's 19.65 s",
                results[(nodes[-1], sources[-1])] < 19.65)
