"""Ablation: Procedure-4 conflict resolution on vs off (DESIGN.md 5.3).

With ``resolve_conflicts=False``, SOFDA deploys conflicting chains through
the repair path (fresh VMs / grafts) instead of the attach cases.  On
instances engineered to select several overlapping chains, resolution
should never cost more and typically saves VM setups.
"""

import statistics

from _util import shape_check

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.topology import cogent_network


def _run_ablation(seeds=6):
    network = cogent_network(seed=1)
    with_res, without_res, conflicts_seen = [], [], 0
    for seed in range(seeds):
        instance = network.make_instance(
            num_sources=10, num_destinations=10, num_vms=8,
            chain=ServiceChain.of_length(3), seed=seed,
        )
        on = sofda(instance, resolve_conflicts=True)
        off = sofda(instance, resolve_conflicts=False)
        with_res.append(on.cost)
        without_res.append(off.cost)
        conflicts_seen += on.stats.total_conflicted()
    return with_res, without_res, conflicts_seen


def test_ablation_conflict_resolution(once):
    with_res, without_res, conflicts = once(_run_ablation)
    print("\nAblation -- VNF conflict resolution "
          f"(chains needing resolution across runs: {conflicts})")
    print(f"  resolution ON : mean cost={statistics.mean(with_res):9.2f}")
    print(f"  resolution OFF: mean cost={statistics.mean(without_res):9.2f}")
    shape_check("resolution never increases the cost on average",
                statistics.mean(with_res) <= statistics.mean(without_res) + 1e-6)
