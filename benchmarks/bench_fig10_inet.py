"""Fig. 10: the four cost sweeps on the Inet-style synthetic topology.

Paper scale is 5000 nodes / 10000 links / 2000 DCs; the quick bench uses a
10x scaled-down topology (same generator, same degree distribution) --
set SOF_BENCH_FULL=1 for the paper scale.
"""

from _util import full_scale, shape_check

from repro.experiments import fig10_inet, render_series
from repro.experiments.harness import SWEEPS


def _config():
    if full_scale():
        return dict(
            seeds=3, num_nodes=5000, num_links=10000, num_datacenters=2000,
            sweeps=SWEEPS,
        )
    return dict(
        seeds=2, num_nodes=500, num_links=1000, num_datacenters=200,
        sweeps={
            "num_sources": [2, 14, 26],
            "num_destinations": [2, 6, 10],
            "num_vms": [5, 25, 45],
            "chain_length": [3, 5, 7],
        },
    )


def test_fig10_inet(once):
    panels = once(fig10_inet, **_config())
    print("\nFig. 10 -- Inet synthetic (paper: SOFDA < eNEMP/eST < ST; "
          "same four trends)")
    for parameter, result in panels.items():
        print(render_series(result, title=f"--- Fig. 10 {parameter} ---"))
        print()
    sofda = {p: r.mean_cost["SOFDA"] for p, r in panels.items()}
    st = {p: r.mean_cost["ST"] for p, r in panels.items()}
    shape_check("cost rises as destinations grow",
                sofda["num_destinations"][0] <= sofda["num_destinations"][-1])
    shape_check("cost falls as VMs grow",
                sofda["num_vms"][0] >= sofda["num_vms"][-1])
    shape_check("cost rises with chain length",
                sofda["chain_length"][0] <= sofda["chain_length"][-1])
    shape_check("SOFDA beats ST on average",
                sum(s for p in panels for s in sofda[p])
                <= sum(t for p in panels for t in st[p]))
