"""Benchmark fixtures.

Every benchmark regenerates one table or figure of the paper on a reduced
default configuration (so the whole suite finishes in minutes) and prints
the measured series next to the paper's reported shape.  Set
``SOF_BENCH_FULL=1`` to run the paper-scale configurations.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (sweeps are heavy)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
