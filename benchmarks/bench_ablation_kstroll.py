"""Ablation: k-stroll solver choice inside SOFDA (DESIGN.md 5.1).

Compares the exact subset DP against the cheapest-insertion and
nearest-extension heuristics on SoftLayer instances small enough for the
exact solver, measuring both solution cost and runtime.
"""

import statistics
import time

from _util import shape_check

from repro.core.problem import ServiceChain
from repro.core.sofda import sofda
from repro.topology import softlayer_network

METHODS = ("exact", "insertion", "greedy")


def _run_ablation(seeds=6):
    network = softlayer_network(seed=1)
    costs = {m: [] for m in METHODS}
    times = {m: [] for m in METHODS}
    for seed in range(seeds):
        instance = network.make_instance(
            num_sources=6, num_destinations=4, num_vms=12,
            chain=ServiceChain.of_length(4), seed=seed,
        )
        for method in METHODS:
            start = time.perf_counter()
            result = sofda(instance, kstroll_method=method)
            times[method].append(time.perf_counter() - start)
            costs[method].append(result.cost)
    return costs, times


def test_ablation_kstroll(once):
    costs, times = once(_run_ablation)
    print("\nAblation -- k-stroll solver inside SOFDA (12 VMs, |C|=4)")
    for method in METHODS:
        print(f"  {method:10s} cost={statistics.mean(costs[method]):8.2f} "
              f"time={statistics.mean(times[method])*1000:7.1f} ms")
    exact = statistics.mean(costs["exact"])
    insertion = statistics.mean(costs["insertion"])
    shape_check("exact k-stroll never loses to insertion on cost",
                all(e <= i + 1e-6 for e, i in zip(costs["exact"], costs["insertion"])))
    shape_check("insertion heuristic within 10% of exact on average",
                insertion <= exact * 1.10)
