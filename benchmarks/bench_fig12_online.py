"""Fig. 12: online deployment -- accumulative cost vs arrived demands.

Paper shape: accumulative cost grows superlinearly for all algorithms
(costs rise with load); SOFDA accumulates the least, ST the most, with
the gap widening as demands arrive.  Fig. 12(a) is SoftLayer (30 demands),
Fig. 12(b) Cogent (45 demands).
"""

from _util import full_scale, shape_check

from repro.experiments import fig12_online


def test_fig12a_online_softlayer(once):
    num = 30 if full_scale() else 12
    series = once(fig12_online, topology="softlayer", num_requests=num, seed=0)
    print(f"\nFig. 12(a) -- SoftLayer accumulative cost over {num} demands "
          "(paper: SOFDA lowest, ST highest)")
    for name, acc in series.items():
        decimated = [round(v, 1) for v in acc[:: max(1, len(acc) // 6)]]
        print(f"  {name:6s} final={acc[-1]:12.1f} series={decimated}")
    shape_check("SOFDA accumulates the least",
                series["SOFDA"][-1] <= min(series[n][-1] for n in series))
    shape_check("ST accumulates the most",
                series["ST"][-1] >= max(series[n][-1] for n in series) - 1e-9)


def test_fig12b_online_cogent(once):
    num = 45 if full_scale() else 6
    series = once(fig12_online, topology="cogent", num_requests=num, seed=0)
    print(f"\nFig. 12(b) -- Cogent accumulative cost over {num} demands "
          "(paper: SOFDA lowest, widening gap)")
    for name, acc in series.items():
        print(f"  {name:6s} final={acc[-1]:12.1f}")
    shape_check("SOFDA accumulates the least",
                series["SOFDA"][-1] <= min(series[n][-1] for n in series))
