"""Fig. 8: the four cost sweeps on SoftLayer, with the CPLEX optimum.

Paper shape (Fig. 8(a)-(d), SoftLayer, defaults S=14 D=6 M=25 |C|=3):
SOFDA tracks CPLEX closely; eNEMP/eST sit above SOFDA; ST is worst.
Cost falls with more sources and more VMs, rises with more destinations
and longer chains.
"""

from _util import full_scale, shape_check

from repro.experiments import fig8_softlayer, render_series
from repro.experiments.harness import SWEEPS


def _config():
    if full_scale():
        return dict(seeds=5, include_ilp=True, sweeps=SWEEPS, overrides=None)
    return dict(
        seeds=2,
        include_ilp=True,
        # Reduced grid: HiGHS needs seconds-to-minutes per instance at the
        # paper's defaults, so the quick bench trims the sweep points and
        # the non-swept defaults, and caps each solve at 15 s (the
        # incumbent is reported past the cap, as the paper does with
        # CPLEX on hard instances).
        ilp_time_limit=15.0,
        sweeps={
            "num_sources": [2, 14, 26],
            "num_destinations": [2, 6, 10],
            "num_vms": [5, 25, 45],
            "chain_length": [3, 5, 7],
        },
        overrides={"num_sources": 6, "num_destinations": 4, "num_vms": 15},
    )


def test_fig8_softlayer(once):
    panels = once(fig8_softlayer, **_config())
    print("\nFig. 8 -- SoftLayer (paper: SOFDA ~= CPLEX, < eNEMP/eST < ST; "
          "cost falls with |S| and |M|, rises with |D| and |C|)")
    for parameter, result in panels.items():
        print(render_series(result, title=f"--- Fig. 8 {parameter} ---"))
        print()

    sofda = {p: r.mean_cost["SOFDA"] for p, r in panels.items()}
    opt = {p: r.mean_cost.get("CPLEX") for p, r in panels.items()}
    st = {p: r.mean_cost["ST"] for p, r in panels.items()}
    if opt["num_sources"] is not None:
        gaps = [
            s / o
            for p in panels
            for s, o in zip(sofda[p], opt[p])
            if o > 0
        ]
        print(f"  SOFDA/OPT ratio: mean={sum(gaps)/len(gaps):.3f} max={max(gaps):.3f}")
        shape_check("SOFDA within 10% of the optimum on average",
                    sum(gaps) / len(gaps) < 1.10)
        # With the quick bench's ILP time cap the "optimum" is an
        # incumbent, which SOFDA may occasionally edge out; allow 5%.
        shape_check("SOFDA never beats the IP incumbent by more than 5%",
                    all(g >= 0.95 for g in gaps))
    shape_check("cost falls as sources grow",
                sofda["num_sources"][0] >= sofda["num_sources"][-1])
    shape_check("cost rises as destinations grow",
                sofda["num_destinations"][0] <= sofda["num_destinations"][-1])
    shape_check("cost falls as VMs grow",
                sofda["num_vms"][0] >= sofda["num_vms"][-1])
    shape_check("cost rises with chain length",
                sofda["chain_length"][0] <= sofda["chain_length"][-1])
    shape_check("SOFDA beats ST everywhere",
                all(s <= t + 1e-9 for p in panels
                    for s, t in zip(sofda[p], st[p])))
