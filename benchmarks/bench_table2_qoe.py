"""Table II: video QoE on the experimental SDN (Fig. 13 topology).

Paper (our testbed column): startup latency SOFDA 7.5 s < eNEMP 9.0 s <
eST 10.0 s; re-buffering SOFDA 34.0 s < eNEMP 39.5 s < eST 41.0 s.

Known deviation (see EXPERIMENTS.md): in the flow-level model, eST's
short-hop trees achieve slightly better simulated QoE than SOFDA; the
SOFDA < eNEMP ordering and the magnitudes (seconds of startup, tens of
seconds of re-buffering on a 137 s stream) reproduce.
"""

from _util import full_scale, shape_check

from repro.experiments import table2_qoe

PAPER = {
    "SOFDA": (7.5, 34.0),
    "eNEMP": (9.0, 39.5),
    "eST": (10.0, 41.0),
}


def test_table2_qoe(once):
    trials = 60 if full_scale() else 20
    rows = once(table2_qoe, trials=trials, seed=4)
    print(f"\nTable II -- QoE over {trials} trials "
          "(paper: SOFDA 7.5/34.0, eNEMP 9.0/39.5, eST 10.0/41.0)")
    for name, row in rows.items():
        paper_s, paper_r = PAPER[name]
        print(f"  {name:6s} startup={row['startup_latency_s']:6.2f}s "
              f"(paper {paper_s}) rebuffer={row['rebuffering_s']:7.2f}s "
              f"(paper {paper_r})")
    shape_check("SOFDA beats eNEMP on startup latency",
                rows["SOFDA"]["startup_latency_s"]
                <= rows["eNEMP"]["startup_latency_s"] + 1e-9)
    shape_check("SOFDA beats eNEMP on re-buffering",
                rows["SOFDA"]["rebuffering_s"]
                <= rows["eNEMP"]["rebuffering_s"] + 1e-9)
    shape_check("re-buffering magnitude is tens of seconds on a 137 s video",
                all(5.0 < row["rebuffering_s"] < 137.0 for row in rows.values()))
