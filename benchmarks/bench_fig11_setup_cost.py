"""Fig. 11: impact of the VM setup-cost multiple (1x..9x) per chain length.

Paper shape: (a) forest cost grows with both the setup-cost multiple and
|C|; (b) the average number of used VMs falls as setup costs rise and
grows with |C|.
"""

from _util import full_scale, shape_check

from repro.experiments import fig11_setup_cost


def _config():
    if full_scale():
        return dict(seeds=5, multiples=(1, 3, 5, 7, 9),
                    chain_lengths=(3, 4, 5, 6, 7), overrides=None)
    return dict(seeds=3, multiples=(1, 5, 9), chain_lengths=(3, 5, 7),
                overrides={"num_sources": 8, "num_vms": 20})


def test_fig11_setup_cost(once):
    config = _config()
    data = once(fig11_setup_cost, **config)
    multiples = list(config["multiples"])
    print("\nFig. 11(a) -- SOFDA cost vs setup-cost multiple "
          "(paper: grows with multiple and |C|)")
    for length, series in data["cost"].items():
        row = "  ".join(f"{v:8.2f}" for v in series)
        print(f"  |C|={length}: {row}   (multiples {multiples})")
    print("Fig. 11(b) -- used VMs vs setup-cost multiple "
          "(paper: falls with multiple, grows with |C|)")
    for length, series in data["vms"].items():
        row = "  ".join(f"{v:8.2f}" for v in series)
        print(f"  |C|={length}: {row}")

    lengths = sorted(data["cost"])
    shape_check("cost grows with the setup-cost multiple (every |C|)",
                all(data["cost"][c][0] <= data["cost"][c][-1] + 1e-9
                    for c in lengths))
    shape_check("cost grows with |C| (at 1x)",
                data["cost"][lengths[0]][0] <= data["cost"][lengths[-1]][0] + 1e-9)
    shape_check("used VMs do not increase with the setup-cost multiple",
                all(data["vms"][c][0] >= data["vms"][c][-1] - 0.5
                    for c in lengths))
    shape_check("used VMs grow with |C|",
                data["vms"][lengths[0]][0] < data["vms"][lengths[-1]][0])
