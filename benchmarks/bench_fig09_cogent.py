"""Fig. 9: the four cost sweeps on Cogent (190 nodes; no CPLEX).

Paper shape: same trends as Fig. 8 with larger absolute costs and wider
algorithm gaps ("the improvement is more significant because larger
networks contain more candidate nodes and links").
"""

from _util import full_scale, shape_check

from repro.experiments import fig9_cogent, render_series
from repro.experiments.harness import SWEEPS


def _config():
    if full_scale():
        return dict(seeds=5, sweeps=SWEEPS, overrides=None)
    return dict(
        seeds=2,
        sweeps={
            "num_sources": [2, 14, 26],
            "num_destinations": [2, 6, 10],
            "num_vms": [5, 25, 45],
            "chain_length": [3, 5, 7],
        },
        overrides=None,
    )


def test_fig9_cogent(once):
    panels = once(fig9_cogent, **_config())
    print("\nFig. 9 -- Cogent (paper: SOFDA < eNEMP/eST < ST, same trends "
          "as Fig. 8, larger gaps)")
    for parameter, result in panels.items():
        print(render_series(result, title=f"--- Fig. 9 {parameter} ---"))
        print()
    sofda = {p: r.mean_cost["SOFDA"] for p, r in panels.items()}
    st = {p: r.mean_cost["ST"] for p, r in panels.items()}
    shape_check("cost falls as sources grow",
                sofda["num_sources"][0] >= sofda["num_sources"][-1])
    shape_check("cost rises as destinations grow",
                sofda["num_destinations"][0] <= sofda["num_destinations"][-1])
    shape_check("cost falls as VMs grow",
                sofda["num_vms"][0] >= sofda["num_vms"][-1])
    shape_check("cost rises with chain length",
                sofda["chain_length"][0] <= sofda["chain_length"][-1])
    margins = [
        (t - s) / t for p in panels for s, t in zip(sofda[p], st[p]) if t > 0
    ]
    print(f"  SOFDA vs ST margin: mean={100*sum(margins)/len(margins):.1f}%")
    shape_check("SOFDA beats ST by a clear margin on average",
                sum(margins) / len(margins) > 0.05)
