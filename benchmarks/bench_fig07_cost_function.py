"""Fig. 7: the Fortz--Thorup cost curve (load 0..1.2, capacity 1)."""

from _util import shape_check

from repro.experiments import fig7_cost_function


def test_fig7_cost_function(once):
    curve = once(fig7_cost_function)
    # Print a decimated series in the figure's range.
    print("\nFig. 7 -- cost vs load (p = 1); paper: convex, ~0.33 at the first "
          "knee, ~16 at load 1.2")
    for load, cost in curve[::12]:
        print(f"  load={load:5.2f}  cost={cost:8.3f}")
    loads = [l for l, _ in curve]
    costs = [c for _, c in curve]
    diffs = [b - a for a, b in zip(costs, costs[1:])]
    shape_check("cost is nondecreasing", all(d >= -1e-12 for d in diffs))
    # Convexity holds below the last knee; the paper's printed -14318/3
    # intercept makes the final segment jump (documented in EXPERIMENTS.md).
    within = [d for l, d in zip(loads, diffs) if l < 1.09]
    shape_check("cost is convex below the last knee",
                all(b >= a - 1e-9 for a, b in zip(within, within[1:])))
    shape_check("cost(1/3) equals 1/3 (first segment is identity)",
                abs(costs[loads.index(min(loads, key=lambda x: abs(x - 1/3)))] - 1/3) < 0.02)
    shape_check("cost explodes past capacity (cost(1.2) > 100x cost(0.9))",
                costs[-1] > 100 * costs[min(range(len(loads)), key=lambda i: abs(loads[i]-0.9))])
